"""Behavioural tests for Filter-Split-Forward (Algorithms 2-5)."""

import pytest

from repro.core import FSFConfig, filter_split_forward_approach
from repro.experiments.tables import run_fig3_walkthrough, table_i_subscriptions
from repro.model import IdentifiedSubscription
from repro.network.node import LOCAL

from deployments import line_deployment, make_network, publish


def sub(sub_id, ranges, delta_t=5.0):
    return IdentifiedSubscription.from_ranges(
        sub_id, {k: ("t", lo, hi) for k, (lo, hi) in ranges.items()}, delta_t
    )


def exact_fsf():
    return filter_split_forward_approach(FSFConfig(exact_filtering=True))


class TestFiltering:
    def test_identical_subscription_covered(self, line):
        net = make_network(line, exact_fsf())
        net.register_subscription("u2", sub("s1", {"a": (0, 10)}))
        net.run_to_quiescence()
        units = net.meter.subscription_units
        net.register_subscription("u2", sub("s2", {"a": (0, 10)}))
        net.run_to_quiescence()
        assert net.meter.subscription_units == units, "duplicate adds no traffic"
        store = net.nodes["u2"].stores[LOCAL]
        assert [op.subscription_id for op in store.covered] == ["s2"]

    def test_union_coverage_beyond_pairwise(self, line):
        """Two halves jointly cover — single-operator check cannot."""
        net = make_network(line, exact_fsf())
        net.register_subscription("u2", sub("l", {"a": (0, 6)}))
        net.register_subscription("u2", sub("r", {"a": (5, 10)}))
        net.run_to_quiescence()
        units = net.meter.subscription_units
        net.register_subscription("u2", sub("m", {"a": (2, 8)}))
        net.run_to_quiescence()
        assert net.meter.subscription_units == units

    def test_cross_attribute_set_subsumption_table_i(self, line):
        """The Table I scenario on the line network: s3 forwards nothing."""
        net = make_network(line, exact_fsf())
        for s in table_i_subscriptions():
            net.register_subscription("u2", s)
            net.run_to_quiescence()
        store = net.nodes["u2"].stores[LOCAL]
        assert [op.subscription_id for op in store.covered] == ["s3"]
        # s1 travels 4 links (to s_b), s2 travels 5 links... compute:
        # s1{a,b}: u2->u1->hub->s_a (3 whole) + s_a->s_b (piece) = 4
        # s2{b,c}: u2->u1->hub->s_a (3 whole) + s_a->s_b + s_b->s_c = 5
        assert net.meter.subscription_units == 9

    def test_gap_means_not_covered(self, line):
        net = make_network(line, exact_fsf())
        net.register_subscription("u2", sub("l", {"a": (0, 4)}))
        net.register_subscription("u2", sub("r", {"a": (6, 10)}))
        net.run_to_quiescence()
        units = net.meter.subscription_units
        net.register_subscription("u2", sub("m", {"a": (2, 8)}))  # gap (4,6)
        net.run_to_quiescence()
        assert net.meter.subscription_units > units

    def test_filtering_is_per_origin(self, line):
        """Subscriptions from different origins are not compared (S_m)."""
        net = make_network(line, exact_fsf())
        net.register_subscription("u2", sub("s1", {"a": (0, 10)}))
        net.run_to_quiescence()
        # Same subscription from u1: at u1 the copies come from
        # different origins (u2 vs LOCAL), so both are forwarded.
        units = net.meter.subscription_units
        net.register_subscription("u1", sub("s2", {"a": (0, 10)}))
        net.run_to_quiescence()
        # s2 is forwarded u1->hub (different origin than s1 at u1), but
        # at hub both copies share the origin u1, so s2 is covered there
        # and travels no further: exactly one extra unit.
        assert net.meter.subscription_units == units + 1
        hub = net.nodes["hub"]
        assert [op.subscription_id for op in hub.stores["u1"].covered] == ["s2"]


class TestEventPath:
    def test_correlated_pair_delivered_once_per_link(self, line):
        net = make_network(line, exact_fsf())
        net.register_subscription("u2", sub("s", {"a": (0, 10), "b": (0, 10)}))
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0)
        publish(net, "b", 5.0, ts=101.0)
        net.run_to_quiescence()
        delivered = net.delivery.delivered("s")
        assert {k[0] for k in delivered} == {"a", "b"}
        # a: s_a->hub->u1->u2 (3) ; b: s_b->s_a->hub->u1->u2 (4)
        assert net.meter.event_units == 7

    def test_uncorrelated_events_do_not_travel(self, line):
        net = make_network(line, exact_fsf(), delta_t=5.0)
        net.register_subscription("u2", sub("s", {"a": (0, 10), "b": (0, 10)}))
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0)
        publish(net, "b", 5.0, ts=200.0)  # outside delta_t
        net.run_to_quiescence()
        assert net.delivery.delivered("s") == {}
        # 'b' crosses s_b->s_a once (its simple-operator fragment always
        # forwards matching values); the correlation check at s_a then
        # fails, so nothing travels the remaining three links.
        assert net.meter.event_units == 1

    def test_shared_link_carries_event_once(self, line):
        """Two overlapping subscriptions share the event stream."""
        net = make_network(line, exact_fsf())
        net.register_subscription("u2", sub("s1", {"a": (0, 10)}))
        net.register_subscription("u2", sub("s2", {"a": (0, 20)}))
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0)
        net.run_to_quiescence()
        assert net.delivery.delivered_count("s1") == 1
        assert net.delivery.delivered_count("s2") == 1
        assert net.meter.event_units == 3  # once per link, not per sub

    def test_covered_subscription_regenerates_at_coverage_node(self, line):
        net = make_network(line, exact_fsf())
        net.register_subscription("u2", sub("l", {"a": (0, 6)}))
        net.register_subscription("u2", sub("r", {"a": (5, 10)}))
        net.register_subscription("u2", sub("m", {"a": (2, 8)}))  # covered
        net.run_to_quiescence()
        publish(net, "a", 5.5, ts=100.0)
        net.run_to_quiescence()
        for sub_id in ("l", "r", "m"):
            assert net.delivery.delivered_count(sub_id) == 1, sub_id

    def test_complex_delivery_counter(self, line):
        net = make_network(line, exact_fsf())
        net.register_subscription("u2", sub("s", {"a": (0, 10), "b": (0, 10)}))
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0)
        publish(net, "b", 5.0, ts=101.0)
        net.run_to_quiescence()
        assert net.delivery.complex_deliveries["s"] >= 1


class TestFig3:
    def test_walkthrough_matches_paper(self):
        w = run_fig3_walkthrough(exact_filtering=True)
        assert w.covered["n6"] == ["s3[a,b,c]"]
        # s3 forwards nothing: total = s1 (4 links) + s2 (4 links).
        assert w.subscription_units == 8
        for node in ("n1", "n2", "n3", "n4", "n5"):
            assert all("s3" not in op for op in w.stored[node])
            assert all("s3" not in op for op in w.covered[node])


class TestCoarsening:
    def test_coarsening_widens_forwarded_operators(self, line):
        net = make_network(
            line,
            filter_split_forward_approach(
                FSFConfig(exact_filtering=True, coarsening=2.0)
            ),
        )
        net.register_subscription("u2", sub("s", {"a": (0, 10)}))
        net.run_to_quiescence()
        stored = net.nodes["s_a"].stores["hub"].uncovered[0]
        assert stored.slot("a").interval.lo == -2.0
        assert stored.slot("a").interval.hi == 12.0

    def test_user_matching_stays_exact_under_coarsening(self, line):
        net = make_network(
            line,
            filter_split_forward_approach(
                FSFConfig(exact_filtering=True, coarsening=5.0)
            ),
        )
        net.register_subscription("u2", sub("s", {"a": (0, 10)}))
        net.run_to_quiescence()
        publish(net, "a", 12.0, ts=100.0)  # matches widened, not original
        net.run_to_quiescence()
        assert net.meter.event_units > 0, "coarsened filter forwards it"
        assert net.delivery.delivered_count("s") == 0, "user filter drops it"
