"""Cross-approach integration tests on a reduced real scenario.

These are the invariants the paper's evaluation rests on; they must
hold on any workload, so we check them on a small but non-trivial run
of all five systems over the same deployment, subscriptions and events.
"""

import pytest

from repro.experiments.runner import REPLAY_START, run_point
from repro.metrics.oracle import compute_truth
from repro.network.topology import build_deployment
from repro.protocols.registry import all_approaches
from repro.workload.sensorscope import ReplayConfig, build_replay
from repro.workload.subscriptions import (
    SubscriptionWorkloadConfig,
    generate_subscriptions,
)


@pytest.fixture(scope="module")
def arena():
    deployment = build_deployment(36, 4, seed=5)
    replay = build_replay(deployment, ReplayConfig(rounds=8, seed=5))
    workload = generate_subscriptions(
        deployment,
        replay.medians,
        SubscriptionWorkloadConfig(n_subscriptions=32, attrs_min=3, attrs_max=5, seed=5),
        spreads=replay.spreads,
    )
    events = replay.shifted(REPLAY_START)
    truths = compute_truth(
        [p.subscription for p in workload], deployment, events
    )
    results = {}
    for key, approach in all_approaches().items():
        results[key] = run_point(approach, deployment, workload, events, truths=truths)
    return deployment, workload, truths, results


class TestCrossApproachInvariants:
    def test_deterministic_approaches_reach_full_recall(self, arena):
        _, _, _, results = arena
        for key in ("centralized", "naive", "operator_placement", "multijoin"):
            assert results[key].recall == 1.0, key

    def test_fsf_recall_in_paper_band(self, arena):
        _, _, _, results = arena
        assert results["fsf"].recall >= 0.90

    def test_only_multijoin_has_false_positives(self, arena):
        _, _, _, results = arena
        assert results["multijoin"].false_positive_rate > 0.0
        for key in ("centralized", "naive", "operator_placement", "fsf"):
            assert results[key].false_positive_rate == 0.0, key

    def test_subscription_load_ordering(self, arena):
        _, _, _, results = arena
        sub = {k: r.subscription_load for k, r in results.items()}
        assert sub["centralized"] < sub["fsf"]
        assert sub["fsf"] <= sub["operator_placement"] <= sub["naive"]

    def test_event_load_ordering(self, arena):
        _, _, _, results = arena
        evt = {k: r.event_load for k, r in results.items()}
        assert evt["fsf"] < evt["multijoin"]
        assert evt["fsf"] < evt["operator_placement"] <= evt["naive"]

    def test_no_subscriptions_dropped(self, arena):
        _, _, _, results = arena
        for key, result in results.items():
            assert result.dropped_subscriptions == 0, key

    def test_oracle_sanity(self, arena):
        _, workload, truths, _ = arena
        assert sum(t.n_instances for t in truths.values()) > 0
        assert set(truths) == {p.subscription.sub_id for p in workload}

    def test_same_workload_same_result(self, arena):
        """Determinism: re-running an approach reproduces every count."""
        deployment, workload, truths, results = arena
        replay = build_replay(deployment, ReplayConfig(rounds=8, seed=5))
        again = run_point(
            all_approaches()["fsf"],
            deployment,
            workload,
            replay.shifted(REPLAY_START),
            truths=truths,
        )
        first = results["fsf"]
        assert again.subscription_load == first.subscription_load
        assert again.event_load == first.event_load
        assert again.recall == first.recall
