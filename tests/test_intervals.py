"""Unit and property tests for the closed-interval algebra."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.model.intervals import (
    EMPTY_INTERVAL,
    FULL_INTERVAL,
    Interval,
    merge_intervals,
    point,
    subtract,
    union_covers,
)

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def ivs(lo=-100.0, hi=100.0):
    return st.tuples(st.floats(lo, hi), st.floats(lo, hi)).map(
        lambda t: Interval(min(t), max(t))
    )


class TestBasics:
    def test_contains_endpoints(self):
        iv = Interval(1.0, 3.0)
        assert iv.contains(1.0) and iv.contains(3.0) and iv.contains(2.0)
        assert not iv.contains(0.999) and not iv.contains(3.001)

    def test_empty_interval(self):
        assert EMPTY_INTERVAL.is_empty
        assert not EMPTY_INTERVAL.contains(0.0)
        assert EMPTY_INTERVAL.length == 0.0

    def test_point_interval(self):
        p = point(5.0)
        assert p.is_point and p.contains(5.0) and p.length == 0.0

    def test_full_interval_contains_everything(self):
        assert FULL_INTERVAL.contains(1e308) and FULL_INTERVAL.contains(-1e308)

    def test_contains_interval_reflexive(self):
        iv = Interval(0.0, 10.0)
        assert iv.contains_interval(iv)

    def test_empty_contained_in_everything(self):
        assert Interval(0.0, 1.0).contains_interval(EMPTY_INTERVAL)
        assert not EMPTY_INTERVAL.contains_interval(Interval(0.0, 1.0))

    def test_overlaps_touching(self):
        assert Interval(0.0, 1.0).overlaps(Interval(1.0, 2.0))
        assert not Interval(0.0, 1.0).overlaps(Interval(1.5, 2.0))

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)
        assert Interval(0, 1).intersect(Interval(2, 3)).is_empty

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(5, 6)) == Interval(0, 6)
        assert EMPTY_INTERVAL.hull(Interval(1, 2)) == Interval(1, 2)

    def test_widen(self):
        assert Interval(0, 1).widen(0.5) == Interval(-0.5, 1.5)
        with pytest.raises(ValueError):
            Interval(0, 1).widen(-0.1)
        assert EMPTY_INTERVAL.widen(1.0).is_empty

    def test_sample_bounds(self):
        iv = Interval(2.0, 4.0)
        assert iv.sample(0.0) == 2.0 and iv.sample(1.0) == 4.0
        with pytest.raises(ValueError):
            iv.sample(1.5)
        with pytest.raises(ValueError):
            EMPTY_INTERVAL.sample(0.5)

    def test_sample_point_interval(self):
        assert point(3.0).sample(0.7) == 3.0

    def test_relative_position(self):
        assert Interval(0, 10).relative_position(2.5) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            point(1.0).relative_position(1.0)


class TestSubtract:
    def test_hole_inside(self):
        pieces = list(subtract(Interval(0, 10), Interval(3, 7)))
        assert pieces == [Interval(0, 3), Interval(7, 10)]

    def test_hole_covers(self):
        assert list(subtract(Interval(2, 3), Interval(0, 10))) == []

    def test_disjoint_hole(self):
        assert list(subtract(Interval(0, 1), Interval(5, 6))) == [Interval(0, 1)]

    def test_empty_target(self):
        assert list(subtract(EMPTY_INTERVAL, Interval(0, 1))) == []


class TestUnionCovers:
    def test_single_cover(self):
        assert union_covers([Interval(0, 10)], Interval(2, 8))

    def test_two_piece_cover(self):
        assert union_covers([Interval(0, 5), Interval(5, 10)], Interval(0, 10))

    def test_gap_detected(self):
        assert not union_covers([Interval(0, 4), Interval(6, 10)], Interval(0, 10))

    def test_unordered_input(self):
        assert union_covers(
            [Interval(6, 10), Interval(0, 4), Interval(3, 7)], Interval(0, 10)
        )

    def test_empty_target_trivially_covered(self):
        assert union_covers([], EMPTY_INTERVAL)

    def test_empty_cover_fails(self):
        assert not union_covers([], Interval(0, 1))

    @given(st.lists(ivs(), max_size=8), ivs())
    def test_matches_pointwise_semantics(self, cover, target):
        """union_covers agrees with dense point probing."""
        claimed = union_covers(cover, target)
        if target.is_empty:
            assert claimed
            return
        n = 201
        probes = [
            min(target.hi, target.lo + (target.hi - target.lo) * i / (n - 1))
            for i in range(n)
        ]
        pointwise = all(any(c.contains(p) for c in cover) for p in probes)
        if claimed:
            assert pointwise
        # (pointwise probing may miss tiny gaps, so only one direction
        # is checked exactly; the reverse is checked on endpoints)
        if not claimed and pointwise:
            endpoints = sorted(
                {target.lo, target.hi}
                | {c.lo for c in cover if target.contains(c.lo)}
                | {c.hi for c in cover if target.contains(c.hi)}
            )
            mids = [
                (a + b) / 2 for a, b in zip(endpoints, endpoints[1:])
            ]
            assert not all(
                any(c.contains(p) for c in cover) for p in endpoints + mids
            )


class TestMerge:
    def test_merge_overlapping(self):
        assert merge_intervals([Interval(0, 2), Interval(1, 3)]) == [Interval(0, 3)]

    def test_merge_disjoint(self):
        merged = merge_intervals([Interval(4, 5), Interval(0, 1)])
        assert merged == [Interval(0, 1), Interval(4, 5)]

    def test_merge_drops_empty(self):
        assert merge_intervals([EMPTY_INTERVAL]) == []

    @given(st.lists(ivs(), max_size=10))
    def test_merged_are_disjoint_and_sorted(self, items):
        merged = merge_intervals(items)
        for a, b in zip(merged, merged[1:]):
            assert a.hi < b.lo

    @given(st.lists(ivs(), max_size=10), st.floats(-100, 100))
    def test_merge_preserves_membership(self, items, x):
        before = any(iv.contains(x) for iv in items)
        after = any(iv.contains(x) for iv in merge_intervals(items))
        assert before == after
