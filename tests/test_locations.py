"""Tests for locations, regions and spatial span."""

import pytest
from hypothesis import given, strategies as st

from repro.model.intervals import Interval
from repro.model.locations import (
    CircleRegion,
    EVERYWHERE,
    Location,
    RectRegion,
    SiteLocation,
    SiteRegion,
    UnionRegion,
    bounding_rect,
    spatial_span,
)

coords = st.floats(-1e3, 1e3, allow_nan=False)
locations = st.builds(Location, coords, coords)


class TestLocation:
    def test_distance_symmetry(self):
        a, b = Location(0, 0), Location(3, 4)
        assert a.distance_to(b) == pytest.approx(5.0)
        assert b.distance_to(a) == pytest.approx(5.0)

    @given(locations)
    def test_distance_to_self_zero(self, p):
        assert p.distance_to(p) == 0.0

    @given(locations, locations, locations)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestSpatialSpan:
    def test_empty_and_singleton(self):
        assert spatial_span([]) == 0.0
        assert spatial_span([Location(1, 1)]) == 0.0

    def test_pairwise_maximum(self):
        pts = [Location(0, 0), Location(1, 0), Location(10, 0)]
        assert spatial_span(pts) == pytest.approx(10.0)

    @given(st.lists(locations, min_size=2, max_size=6))
    def test_span_at_least_any_pair(self, pts):
        span = spatial_span(pts)
        assert span >= pts[0].distance_to(pts[-1]) - 1e-9


class TestRegions:
    def test_rect_contains(self):
        r = RectRegion(Interval(0, 10), Interval(0, 5))
        assert r.contains(Location(10, 5)) and r.contains(Location(0, 0))
        assert not r.contains(Location(11, 1))

    def test_rect_around(self):
        r = RectRegion.around(Location(5, 5), 2.0)
        assert r.contains(Location(3, 7)) and not r.contains(Location(2.9, 5))
        with pytest.raises(ValueError):
            RectRegion.around(Location(0, 0), -1.0)

    def test_rect_contains_region(self):
        outer = RectRegion(Interval(0, 10), Interval(0, 10))
        inner = RectRegion(Interval(2, 8), Interval(2, 8))
        assert outer.contains_region(inner)
        assert not inner.contains_region(outer)

    def test_circle(self):
        c = CircleRegion(Location(0, 0), 5.0)
        assert c.contains(Location(3, 4)) and not c.contains(Location(3.1, 4))

    def test_union(self):
        u = UnionRegion((CircleRegion(Location(0, 0), 1.0),
                         CircleRegion(Location(10, 0), 1.0)))
        assert u.contains(Location(0.5, 0)) and u.contains(Location(10.5, 0))
        assert not u.contains(Location(5, 0))

    def test_everywhere(self):
        assert EVERYWHERE.contains(Location(1e9, -1e9))

    def test_bounding_rect(self):
        rect = bounding_rect([Location(0, 0), Location(4, 2)], margin=1.0)
        assert rect.contains(Location(-1, -1)) and rect.contains(Location(5, 3))
        assert not rect.contains(Location(-1.1, 0))
        with pytest.raises(ValueError):
            bounding_rect([])


class TestHierarchicalLocations:
    def test_prefix_containment(self):
        sensor = SiteLocation(("ch", "valais", "gsb", "station3"))
        site = SiteLocation(("ch", "valais"))
        assert sensor.is_within(site)
        assert not site.is_within(sensor)
        assert sensor.is_within(sensor)

    def test_site_region(self):
        region = SiteRegion(SiteLocation(("ch",)))
        assert region.contains_site(SiteLocation(("ch", "gr", "davos")))
        assert not region.contains_site(SiteLocation(("fr", "alps")))
        with pytest.raises(TypeError):
            region.contains(Location(0, 0))
