"""Tests for the complex-event matching semantics (Section IV-A)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.oracle import EventIndex
from repro.model import (
    ComplexEvent,
    IdentifiedSubscription,
    Interval,
    Location,
    RectRegion,
    SimpleEvent,
    complex_event_matches,
    instance_exists,
    match_at_trigger,
    matches_involving,
    operator_from_identified,
)
from repro.model.matching import build_complex_events
from repro.model.operators import operator_from_abstract
from repro.model.subscriptions import AbstractSubscription


def ev(sensor, value, ts, seq=0, loc=(0.0, 0.0), attr="t"):
    return SimpleEvent(sensor, attr, Location(*loc), value, ts, seq)


SUB = IdentifiedSubscription.from_ranges(
    "s", {"a": ("t", 0, 10), "b": ("t", 20, 30)}, delta_t=5.0
)
OP = operator_from_identified(SUB, "user")


class TestPaperDefinition:
    def test_valid_match(self):
        e = ComplexEvent([ev("a", 5, 10.0), ev("b", 25, 12.0)])
        assert complex_event_matches(SUB, e)

    def test_completeness_missing_sensor(self):
        assert not complex_event_matches(SUB, ComplexEvent([ev("a", 5, 10.0)]))

    def test_completeness_extra_sensor(self):
        e = ComplexEvent([ev("a", 5, 10.0), ev("b", 25, 10.5), ev("c", 1, 10.6)])
        assert not complex_event_matches(SUB, e)

    def test_value_filter(self):
        e = ComplexEvent([ev("a", 50, 10.0), ev("b", 25, 12.0)])
        assert not complex_event_matches(SUB, e)

    def test_delta_t_strict(self):
        exactly = ComplexEvent([ev("a", 5, 10.0), ev("b", 25, 15.0)])
        assert not complex_event_matches(SUB, exactly)  # |t - t_i| == delta_t
        inside = ComplexEvent([ev("a", 5, 10.1), ev("b", 25, 15.0)])
        assert complex_event_matches(SUB, inside)

    def test_abstract_matching_with_delta_l(self):
        region = RectRegion(Interval(0, 100), Interval(0, 100))
        sub = AbstractSubscription.from_ranges(
            "x", {"t": (0, 10), "u": (0, 10)}, region, 5.0, delta_l=2.0
        )
        near = ComplexEvent(
            [ev("d1", 5, 1.0, loc=(1, 1)), ev("d2", 5, 2.0, loc=(2, 1), attr="u")]
        )
        far = ComplexEvent(
            [ev("d1", 5, 1.0, loc=(1, 1)), ev("d2", 5, 2.0, loc=(50, 1), attr="u")]
        )
        assert complex_event_matches(sub, near)
        assert not complex_event_matches(sub, far)


class TestTriggerAnchoredMatching:
    def test_match_at_trigger_complete_window(self):
        idx = EventIndex([ev("a", 5, 10.0), ev("b", 25, 12.0)])
        found = match_at_trigger(OP, idx, 12.0)
        assert found is not None
        assert [e.sensor_id for e in found["a"]] == ["a"]

    def test_match_at_trigger_incomplete(self):
        idx = EventIndex([ev("a", 5, 10.0)])
        assert match_at_trigger(OP, idx, 10.0) is None

    def test_window_is_half_open(self):
        # b at exactly trigger - delta_t is NOT correlated (strict <).
        idx = EventIndex([ev("a", 5, 5.0), ev("b", 25, 10.0)])
        assert match_at_trigger(OP, idx, 10.0) is None

    def test_matches_involving_returns_participants(self):
        idx = EventIndex([ev("a", 5, 10.0), ev("b", 25, 12.0)])
        new = ev("b", 25, 12.0)
        found = matches_involving(OP, idx, new)
        assert {e.sensor_id for evs in found.values() for e in evs} == {"a", "b"}

    def test_matches_involving_event_out_of_range(self):
        idx = EventIndex([ev("a", 50, 10.0), ev("b", 25, 12.0)])
        assert matches_involving(OP, idx, ev("a", 50, 10.0)) == {}

    def test_matches_involving_late_arrival_of_earlier_event(self):
        # The trigger (max timestamp) is already stored; the earlier
        # event arrives later — matching must still fire.
        idx = EventIndex([ev("b", 25, 12.0), ev("a", 5, 10.0)])
        found = matches_involving(OP, idx, ev("a", 5, 10.0))
        assert found, "reordered delivery must still correlate"

    def test_instance_exists_trigger_must_be_max(self):
        idx = EventIndex([ev("a", 5, 10.0), ev("b", 25, 12.0)])
        assert instance_exists(OP, idx, ev("b", 25, 12.0))
        # 'a' is not the max of any complete window: the only match has
        # max = b@12; an a-anchored window lacks b (b comes later).
        assert not instance_exists(OP, idx, ev("a", 5, 10.0))

    def test_instance_exists_rejects_non_matching_trigger(self):
        idx = EventIndex([ev("a", 50, 10.0), ev("b", 25, 12.0)])
        assert not instance_exists(OP, idx, ev("b", 50, 12.0))

    def test_spatial_combination_search(self):
        region = RectRegion(Interval(0, 100), Interval(0, 100))
        sub = AbstractSubscription.from_ranges(
            "x", {"t": (0, 10), "u": (0, 10)}, region, 5.0, delta_l=2.0
        )
        op = operator_from_abstract(sub, "user", {"t": ["d1"], "u": ["d2", "d3"]})
        near = ev("d2", 5, 2.0, loc=(1.5, 1), attr="u")
        far = ev("d3", 5, 2.0, loc=(80, 1), attr="u")
        idx = EventIndex([ev("d1", 5, 1.0, loc=(1, 1)), near, far])
        found = match_at_trigger(op, idx, 2.0)
        assert found is not None
        u_participants = {e.sensor_id for e in found["u"]}
        assert u_participants == {"d2"}, "spatially invalid candidate excluded"

    def test_build_complex_events_one_per_slot(self):
        participants = {
            "a": [ev("a", 5, 10.0), ev("a", 6, 11.0, seq=1)],
            "b": [ev("b", 25, 12.0)],
        }
        complex_event = build_complex_events(participants)
        assert len(complex_event) == 2
        assert complex_event.timestamp == 12.0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b"]),
            st.floats(-5, 35, allow_nan=False),
            st.floats(0, 40, allow_nan=False),
        ),
        min_size=1,
        max_size=14,
    )
)
def test_instance_oracle_consistent_with_definition(raw):
    """instance_exists agrees with brute-force complex-event enumeration."""
    events = [
        ev(sensor, value, ts, seq=i) for i, (sensor, value, ts) in enumerate(raw)
    ]
    idx = EventIndex(events)
    a_events = [e for e in events if e.sensor_id == "a"]
    b_events = [e for e in events if e.sensor_id == "b"]
    for trigger in events:
        claimed = instance_exists(OP, idx, trigger)
        brute = False
        for ea in a_events:
            for eb in b_events:
                pair = ComplexEvent([ea, eb])
                # "trigger" semantics: the event is a maximum-timestamp
                # member of some valid match (ties allowed).
                if (
                    complex_event_matches(SUB, pair)
                    and trigger.key in {ea.key, eb.key}
                    and pair.timestamp == trigger.timestamp
                ):
                    brute = True
        assert claimed == brute
