"""Machine-checked equivalence: incremental engine ≡ reference matcher.

The incremental engine (:mod:`repro.matching`) exists for speed; the
reference implementation (:mod:`repro.model.matching`) stays in-tree as
the semantics oracle.  These tests drive both against the *same*
:class:`EventStore` on randomized scenarios — identified and abstract
subscription shapes, finite and infinite ``delta_l``, duplicate
deliveries, out-of-order arrival, expiry/pruning — and require
identical participants (and identical ``instance_exists`` verdicts)
after every single ingest.  Correctness of the rewrite is therefore
checked by machine, not argued in prose.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.matching import MatchingEngine
from repro.model import Interval, Location, SimpleEvent
from repro.model.matching import (
    instance_exists as reference_instance_exists,
    matches_involving as reference_matches_involving,
)
from repro.model.operators import CorrelationOperator, Slot
from repro.network.eventstore import EventStore

UNBOUNDED = float("inf")


# ---------------------------------------------------------------------------
# randomized scenario machinery
# ---------------------------------------------------------------------------
def random_operator(rng: np.random.Generator) -> CorrelationOperator:
    """A random 2-4 slot operator, identified- or abstract-shaped."""
    n_slots = int(rng.integers(2, 5))
    abstract = bool(rng.random() < 0.5)
    delta_t = float(rng.uniform(1.0, 6.0))
    delta_l = float(rng.uniform(1.0, 4.0)) if rng.random() < 0.5 else UNBOUNDED
    slots = []
    sensor_pool = iter(f"d{i}" for i in range(100))
    for s in range(n_slots):
        # Every interval straddles the [0, 2] band the value generator
        # centres on, so windows genuinely complete; edges still differ
        # per slot so acceptance is not uniform.
        lo = float(rng.uniform(-4, 0))
        interval = Interval(lo, lo + float(rng.uniform(3, 10)))
        if abstract:
            # one attribute per slot, several sensors can fill it
            n_sensors = int(rng.integers(1, 4))
            sensors = frozenset(next(sensor_pool) for _ in range(n_sensors))
            slots.append(Slot(f"attr{s}", f"attr{s}", interval, sensors))
        else:
            sensor = next(sensor_pool)
            slots.append(Slot(sensor, "t", interval, frozenset({sensor})))
    return CorrelationOperator("q", "user", slots, delta_t, delta_l)


def random_events(
    rng: np.random.Generator, operator: CorrelationOperator, n: int
) -> list[SimpleEvent]:
    """Near-ordered events over the operator's sensors (+ one stranger).

    ~12% duplicates, ~15% out-of-order (late) deliveries, timestamps on
    a coarse 0.5 grid so equal-timestamp ties and exact window edges
    are exercised constantly.
    """
    attr_of: dict[str, str] = {}
    for slot in operator.slots:
        for sensor in slot.sensors:
            attr_of[sensor] = slot.attribute
    attr_of["stranger"] = "t"
    sensors = sorted(attr_of)
    spread = operator.delta_l if math.isfinite(operator.delta_l) else 3.0
    events: list[SimpleEvent] = []
    t = 0.0
    for i in range(n):
        if events and rng.random() < 0.12:
            events.append(events[int(rng.integers(0, len(events)))])  # duplicate
            continue
        t += float(rng.integers(0, 3)) * 0.5
        ts = t
        if rng.random() < 0.15:  # late (out-of-order) arrival
            ts = max(0.0, t - float(rng.integers(1, 6)) * 0.5)
        sensor = sensors[int(rng.integers(0, len(sensors)))]
        # Mostly in-band values (windows complete often); a tail of
        # misses keeps slot acceptance from being a tautology.
        value = (
            float(rng.uniform(0, 2))
            if rng.random() < 0.75
            else float(rng.uniform(-12, 20))
        )
        events.append(
            SimpleEvent(
                sensor,
                attr_of[sensor],
                Location(
                    float(rng.uniform(0, 1.6 * spread)),
                    float(rng.uniform(0, 1.6 * spread)),
                ),
                value,
                ts,
                i,
            )
        )
    return events


def assert_equivalent(engine, operator, store, event):
    got = engine.matches_involving(operator, event)
    want = reference_matches_involving(operator, store, event)
    assert got == want, (
        f"matches_involving diverged for {event}:\n  engine   ={got}\n"
        f"  reference={want}"
    )
    got_exists = engine.instance_exists(operator, event)
    want_exists = reference_instance_exists(operator, store, event)
    assert got_exists == want_exists, f"instance_exists diverged for {event}"


def run_scenario(seed: int) -> int:
    """One randomized end-to-end scenario; returns #comparisons made."""
    rng = np.random.default_rng(seed)
    operator = random_operator(rng)
    validity = float(rng.uniform(8.0, 25.0))
    store = EventStore(validity)
    engine = MatchingEngine(store)
    events = random_events(rng, operator, n=int(rng.integers(20, 45)))
    # Half the scenarios register late, exercising the backfill path.
    register_at = 0 if rng.random() < 0.5 else len(events) // 2
    if register_at == 0:
        engine.register(operator)
    compared = 0
    now = 0.0
    for i, event in enumerate(events):
        now = max(now, event.timestamp + float(rng.integers(0, 3)) * 0.25)
        store.add(event, now)
        if i == register_at and register_at:
            engine.register(operator)
        if i >= register_at:
            assert_equivalent(engine, operator, store, event)
            compared += 1
            if rng.random() < 0.2:  # re-query an arbitrary earlier event
                earlier = events[int(rng.integers(0, i + 1))]
                assert_equivalent(engine, operator, store, earlier)
                compared += 1
        if rng.random() < 0.1:
            store.prune(now)
    # Post-run: full prune, then every stored event must still agree.
    store.prune(now)
    for event in list(store.all_events()):
        assert_equivalent(engine, operator, store, event)
        compared += 1
    return compared


# 220 seeds ≥ the 200-scenario acceptance floor, split into chunks so
# failures name a reproducible seed range and runtime stays visible.
@pytest.mark.parametrize("chunk", range(22))
def test_engine_equals_reference_randomized(chunk):
    compared = 0
    for seed in range(chunk * 10, chunk * 10 + 10):
        compared += run_scenario(seed)
    assert compared > 0


# ---------------------------------------------------------------------------
# hypothesis: adversarial small cases (shrinking finds minimal diffs)
# ---------------------------------------------------------------------------
SUB_OP = CorrelationOperator(
    "h",
    "user",
    [
        Slot("a", "t", Interval(0, 10), frozenset({"a"})),
        Slot("b", "t", Interval(0, 10), frozenset({"b", "b2"})),
    ],
    delta_t=3.0,
)
SPATIAL_OP = CorrelationOperator(
    "hs",
    "user",
    [
        Slot("a", "t", Interval(0, 10), frozenset({"a"})),
        Slot("b", "t", Interval(0, 10), frozenset({"b", "b2"})),
    ],
    delta_t=3.0,
    delta_l=2.0,
)


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "b2"]),
            st.integers(0, 24),  # timestamp halves — ties guaranteed
            st.integers(-2, 12),  # value, sometimes outside the filter
            st.integers(0, 6),  # x-cell — distances straddle delta_l
        ),
        min_size=1,
        max_size=16,
    ),
    st.booleans(),
)
def test_engine_equals_reference_adversarial(raw, spatial):
    operator = SPATIAL_OP if spatial else SUB_OP
    store = EventStore(validity=100.0)
    engine = MatchingEngine(store)
    engine.register(operator)
    now = 0.0
    events = []
    for i, (sensor, ts_half, value, xcell) in enumerate(raw):
        event = SimpleEvent(
            sensor, "t", Location(xcell * 0.9, 0.0), float(value), ts_half * 0.5, i
        )
        events.append(event)
        now = max(now, event.timestamp)
        store.add(event, now)
        assert_equivalent(engine, operator, store, event)
    for event in events:
        assert_equivalent(engine, operator, store, event)
