"""Tests for oracle, recall and reporting."""

import pytest

from repro.metrics import (
    EventIndex,
    compute_truth,
    improvement_over,
    measure_recall,
    per_subscription_recall,
    render_series_table,
)
from repro.model import IdentifiedSubscription, Location, SimpleEvent
from repro.network.delivery import DeliveryLog

from deployments import line_deployment


def ev(sensor, value, ts, seq=0):
    return SimpleEvent(sensor, "t", Location(0, 0), value, ts, seq)


def sub(sub_id, ranges, delta_t=5.0):
    return IdentifiedSubscription.from_ranges(
        sub_id, {k: ("t", lo, hi) for k, (lo, hi) in ranges.items()}, delta_t
    )


class TestOracle:
    def test_counts_trigger_instances(self, line):
        s = sub("s", {"a": (0, 10), "b": (0, 10)})
        events = [ev("a", 5, 10.0), ev("b", 5, 12.0), ev("b", 5, 30.0, seq=1)]
        truths = compute_truth([s], line, events)
        truth = truths["s"]
        # Only b@12 is the max of a complete window (b@30 has no 'a').
        assert truth.triggers == {("b", 0)}
        assert truth.participants == {("a", 0), ("b", 0)}

    def test_multiple_instances(self, line):
        s = sub("s", {"a": (0, 10), "b": (0, 10)})
        events = [
            ev("a", 5, 10.0),
            ev("b", 5, 11.0),
            ev("a", 5, 12.0, seq=1),
        ]
        truths = compute_truth([s], line, events)
        # b@11 (max over {a@10,b@11}) and a@12 (max over {a@12,b@11}).
        assert truths["s"].triggers == {("b", 0), ("a", 1)}

    def test_out_of_range_events_ignored(self, line):
        s = sub("s", {"a": (0, 10)})
        truths = compute_truth([s], line, [ev("a", 99, 10.0)])
        assert truths["s"].triggers == set()


class TestRecall:
    def _truth_and_log(self, line):
        s = sub("s", {"a": (0, 10), "b": (0, 10)})
        events = [ev("a", 5, 10.0), ev("b", 5, 12.0)]
        truths = compute_truth([s], line, events)
        log = DeliveryLog()
        log.register("s")
        return s, events, truths, log

    def test_full_delivery_recall_one(self, line):
        s, events, truths, log = self._truth_and_log(line)
        log.record_events("s", events)
        report = measure_recall(truths, log)
        assert report.recall == 1.0
        assert report.false_positive_events == 0

    def test_missing_member_loses_instance(self, line):
        s, events, truths, log = self._truth_and_log(line)
        log.record_events("s", [events[1]])  # only 'b'
        report = measure_recall(truths, log)
        assert report.recall == 0.0
        assert report.delivered_instances == 0

    def test_no_instances_is_vacuous_success(self, line):
        s = sub("s", {"a": (0, 10)})
        truths = compute_truth([s], line, [])
        log = DeliveryLog()
        log.register("s")
        assert measure_recall(truths, log).recall == 1.0

    def test_false_positive_counting(self, line):
        s, events, truths, log = self._truth_and_log(line)
        junk = ev("a", 5, 500.0, seq=9)  # matches filter, no instance
        log.record_events("s", events + [junk])
        report = measure_recall(truths, log)
        assert report.false_positive_events == 1
        assert 0 < report.false_positive_rate < 1

    def test_per_subscription_breakdown(self, line):
        s1 = sub("s1", {"a": (0, 10), "b": (0, 10)})
        s2 = sub("s2", {"a": (0, 10)})
        events = [ev("a", 5, 10.0), ev("b", 5, 12.0)]
        truths = compute_truth([s1, s2], line, events)
        log = DeliveryLog()
        log.record_events("s1", events)
        # s2 receives nothing although a@10 matches it.
        breakdown = per_subscription_recall(truths, log)
        assert breakdown == {"s1": 1.0, "s2": 0.0}


class TestDeliveryLog:
    def test_idempotent_recording(self):
        log = DeliveryLog()
        e = ev("a", 5, 1.0)
        log.record_events("s", [e])
        log.record_events("s", [e])
        assert log.delivered_count("s") == 1
        assert log.total_delivered() == 1

    def test_view_is_matching_provider(self):
        log = DeliveryLog()
        log.record_events("s", [ev("a", 5, 1.0), ev("a", 6, 3.0, seq=1)])
        view = log.view("s")
        hits = view.events_for_sensor("a", 0.0, 2.0)
        assert [e.timestamp for e in hits] == [1.0]

    def test_subscriptions_listing(self):
        log = DeliveryLog()
        log.register("s1")
        log.record_events("s2", [ev("a", 5, 1.0)])
        assert log.subscriptions() == ["s1", "s2"]


class TestEventIndex:
    def test_window_query(self):
        idx = EventIndex([ev("a", 1, 1.0), ev("a", 2, 2.0, seq=1)])
        assert [e.value for e in idx.events_for_sensor("a", 1.0, 2.0)] == [2]
        assert idx.events_for_sensor("zzz", 0, 10) == ()

    def test_events_of(self):
        idx = EventIndex([ev("a", 1, 1.0), ev("b", 2, 2.0)])
        assert len(idx.events_of(["a", "b"])) == 2


class TestReporting:
    def test_render_series_table(self):
        text = render_series_table(
            "T", "x", [1, 2], {"alpha": [10.0, 20.0], "beta": [1.0, 2.0]}
        )
        assert "T" in text and "alpha" in text and "20" in text

    def test_improvement_over(self):
        imps = improvement_over([50, 75], [100, 100])
        assert imps == [50.0, 25.0]
        assert improvement_over([1], [0]) == [0.0]
