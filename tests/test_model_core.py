"""Tests for attributes, events, advertisements, filters, subscriptions."""

import math

import pytest

from repro.model import (
    Advertisement,
    AdvertisementTable,
    AttributeRegistry,
    AttributeType,
    ComplexEvent,
    IdentifiedSubscription,
    AbstractSubscription,
    Interval,
    Location,
    RectRegion,
    SimpleEvent,
    SimpleFilter,
    sensorscope_registry,
)
from repro.model.filters import AbstractFilter, IdentifiedFilter


def ev(sensor="d1", attr="t", value=1.0, ts=0.0, seq=0, loc=(0.0, 0.0)):
    return SimpleEvent(sensor, attr, Location(*loc), value, ts, seq)


class TestAttributes:
    def test_registry_holds_five_sensorscope_types(self):
        reg = sensorscope_registry()
        assert len(reg) == 5
        assert "wind_speed" in reg
        assert reg["relative_humidity"].domain == Interval(0.0, 100.0)

    def test_reregistering_identical_is_noop(self):
        reg = AttributeRegistry()
        a = AttributeType("x", Interval(0, 1))
        reg.register(a)
        reg.register(a)
        assert len(reg) == 1

    def test_conflicting_definition_rejected(self):
        reg = AttributeRegistry([AttributeType("x", Interval(0, 1))])
        with pytest.raises(ValueError):
            reg.register(AttributeType("x", Interval(0, 2)))

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            AttributeType("bad", Interval(1, 0))


class TestEvents:
    def test_event_key_identity(self):
        assert ev(seq=3).key == ("d1", 3)

    def test_complex_event_orders_members(self):
        c = ComplexEvent([ev(ts=5.0), ev(sensor="d2", ts=1.0)])
        assert [e.timestamp for e in c.events] == [1.0, 5.0]

    def test_complex_event_timestamp_is_max(self):
        c = ComplexEvent([ev(ts=1.0), ev(sensor="d2", ts=9.0)])
        assert c.timestamp == 9.0
        assert c.trigger.sensor_id == "d2"

    def test_complex_event_spreads(self):
        c = ComplexEvent([ev(ts=1.0, loc=(0, 0)), ev(sensor="d2", ts=3.0, loc=(3, 4))])
        assert c.temporal_spread == 2.0
        assert c.spatial_spread == pytest.approx(5.0)

    def test_complex_event_requires_members(self):
        with pytest.raises(ValueError):
            ComplexEvent([])

    def test_complex_event_sets(self):
        c = ComplexEvent([ev(), ev(sensor="d2", attr="u", seq=1)])
        assert c.sensor_ids == {"d1", "d2"}
        assert c.attributes == {"t", "u"}
        assert len(c) == 2

    def test_timestamp_and_value_pinned_to_float(self):
        """Constructors may pass ints or numpy scalars (replay rounds,
        grid timestamps, fault-jittered arrivals) — the event always
        stores plain ``float`` so tuple comparisons against numpy
        float64 columns never mix dtypes."""
        import numpy as np

        for raw_ts, raw_value in (
            (3, 7),
            (np.int64(3), np.int64(7)),
            (np.float64(3.5), np.float64(7.25)),
            (np.float32(3.5), np.float32(7.25)),
        ):
            event = ev(ts=raw_ts, value=raw_value)
            assert type(event.timestamp) is float, type(raw_ts)
            assert type(event.value) is float, type(raw_value)
            assert event.timestamp == float(raw_ts)
            assert event.value == float(raw_value)


class TestAdvertisementTable:
    def test_local_and_neighbor_next_hops(self):
        table = AdvertisementTable()
        table.add_local(Advertisement("d1", "t", Location(0, 0)))
        table.add("n2", Advertisement("d2", "t", Location(1, 1)))
        assert table.next_hop("d1") == AdvertisementTable.LOCAL
        assert table.next_hop("d2") == "n2"
        assert table.next_hop("unknown") is None
        assert table.knows("d1") and not table.knows("d9")

    def test_duplicate_advertisement_not_new(self):
        table = AdvertisementTable()
        ad = Advertisement("d1", "t", Location(0, 0))
        assert table.add("n1", ad)
        assert not table.add("n1", ad)

    def test_sensors_matching_with_region(self):
        table = AdvertisementTable()
        table.add("n1", Advertisement("d1", "t", Location(0, 0)))
        table.add("n2", Advertisement("d2", "t", Location(50, 50)))
        table.add("n2", Advertisement("d3", "u", Location(0, 0)))
        region = RectRegion(Interval(-1, 1), Interval(-1, 1))
        hits = table.sensors_matching("t", region)
        assert [a.sensor_id for a in hits] == ["d1"]
        assert len(table.sensors_matching("t")) == 2

    def test_partition_by_origin(self):
        table = AdvertisementTable()
        table.add("n1", Advertisement("d1", "t", Location(0, 0)))
        table.add("n1", Advertisement("d2", "t", Location(0, 0)))
        table.add("n2", Advertisement("d3", "t", Location(0, 0)))
        part = table.partition_by_origin(["d1", "d2", "d3", "dX"])
        assert part == {"n1": ["d1", "d2"], "n2": ["d3"]}


class TestFilters:
    def test_simple_filter_matching(self):
        f = SimpleFilter("t", Interval(0, 10))
        assert f.matches_event(ev(value=5.0))
        assert not f.matches_event(ev(value=11.0))
        assert not f.matches_event(ev(attr="u", value=5.0))

    def test_equals_form(self):
        f = SimpleFilter.equals("t", 5.0)
        assert f.matches_value(5.0) and not f.matches_value(5.0001)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            SimpleFilter("t", Interval(3, 2))

    def test_covers_and_intersect(self):
        wide = SimpleFilter("t", Interval(0, 10))
        narrow = SimpleFilter("t", Interval(2, 5))
        assert wide.covers(narrow) and not narrow.covers(wide)
        assert wide.intersect(narrow).interval == Interval(2, 5)
        assert wide.intersect(SimpleFilter("t", Interval(20, 30))) is None
        with pytest.raises(ValueError):
            wide.intersect(SimpleFilter("u", Interval(0, 1)))

    def test_identified_filter_pins_sensor(self):
        f = IdentifiedFilter("d1", SimpleFilter("t", Interval(0, 10)))
        assert f.matches_event(ev(value=3.0))
        assert not f.matches_event(ev(sensor="d2", value=3.0))

    def test_abstract_filter_region(self):
        region = RectRegion(Interval(0, 1), Interval(0, 1))
        f = AbstractFilter(SimpleFilter("t", Interval(0, 10)), region)
        assert f.matches_event(ev(value=5.0, loc=(0.5, 0.5)))
        assert not f.matches_event(ev(value=5.0, loc=(2.0, 0.5)))
        ad_in = Advertisement("d1", "t", Location(0.5, 0.5))
        ad_out = Advertisement("d2", "t", Location(9, 9))
        assert f.applies_to(ad_in) and not f.applies_to(ad_out)
        assert f.identify(ad_in).sensor_id == "d1"
        with pytest.raises(ValueError):
            f.identify(ad_out)


class TestSubscriptions:
    def test_identified_from_ranges(self):
        s = IdentifiedSubscription.from_ranges(
            "s1", {"a": ("t", 0, 10), "b": ("u", 5, 6)}, 2.0
        )
        assert s.sensor_ids == {"a", "b"}
        assert s.matches_simple(ev(sensor="a", value=3.0))
        assert not s.matches_simple(ev(sensor="c", value=3.0))
        assert s.filter_for("b").attribute == "u"
        assert s.filter_for("zzz") is None

    def test_duplicate_sensor_rejected(self):
        f = IdentifiedFilter("a", SimpleFilter("t", Interval(0, 1)))
        with pytest.raises(ValueError):
            IdentifiedSubscription("s", [f, f], 1.0)

    def test_delta_t_positive(self):
        with pytest.raises(ValueError):
            IdentifiedSubscription.from_ranges("s", {"a": ("t", 0, 1)}, 0.0)

    def test_widened(self):
        s = IdentifiedSubscription.from_ranges("s", {"a": ("t", 0, 10)}, 1.0)
        w = s.widened(2.0)
        assert w.filter_for("a").interval == Interval(-2, 12)

    def test_abstract_subscription(self):
        region = RectRegion(Interval(0, 10), Interval(0, 10))
        s = AbstractSubscription.from_ranges(
            "s", {"t": (0, 5), "u": (1, 2)}, region, 2.0, delta_l=3.0
        )
        assert s.attributes == {"t", "u"}
        assert s.matches_simple(ev(value=4.0, loc=(1, 1)))
        assert not s.matches_simple(ev(value=4.0, loc=(20, 1)))
        assert s.clause_for("u").attribute == "u"
        assert s.clause_for("nope") is None

    def test_abstract_resolution(self):
        region = RectRegion(Interval(0, 10), Interval(0, 10))
        s = AbstractSubscription.from_ranges("s", {"t": (0, 5)}, region, 2.0)
        table = AdvertisementTable()
        table.add("n1", Advertisement("d1", "t", Location(1, 1)))
        table.add("n1", Advertisement("d2", "t", Location(99, 99)))
        resolved = s.resolve(table)
        assert [a.sensor_id for a in resolved["t"]] == ["d1"]

    def test_abstract_delta_l_validation(self):
        region = RectRegion(Interval(0, 1), Interval(0, 1))
        with pytest.raises(ValueError):
            AbstractSubscription.from_ranges("s", {"t": (0, 1)}, region, 1.0, delta_l=0.0)
        ok = AbstractSubscription.from_ranges("s", {"t": (0, 1)}, region, 1.0)
        assert math.isinf(ok.delta_l)
