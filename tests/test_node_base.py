"""Tests for the shared node machinery: flooding, storage, splitting."""

import pytest

from repro.core import filter_split_forward_approach
from repro.model import IdentifiedSubscription
from repro.network.node import LOCAL

from deployments import fork_deployment, line_deployment, make_network, publish


def sub(sub_id, ranges, delta_t=5.0):
    return IdentifiedSubscription.from_ranges(
        sub_id, {k: ("t", lo, hi) for k, (lo, hi) in ranges.items()}, delta_t
    )


class TestAdvertisementFlooding:
    def test_every_node_knows_every_sensor(self, line):
        net = make_network(line, filter_split_forward_approach())
        for node in net.nodes.values():
            for sensor in ("a", "b", "c"):
                assert node.ads.knows(sensor)

    def test_next_hops_point_toward_sensor(self, line):
        net = make_network(line, filter_split_forward_approach())
        assert net.nodes["u2"].ads.next_hop("a") == "u1"
        assert net.nodes["hub"].ads.next_hop("a") == "s_a"
        assert net.nodes["s_a"].ads.next_hop("a") == LOCAL
        assert net.nodes["s_a"].ads.next_hop("c") == "s_b"

    def test_flood_units_counted(self, line):
        net = make_network(line, filter_split_forward_approach())
        # 3 advertisements x 5 links, each crossing each link once.
        assert net.meter.advertisement_units == 15


class TestSubscriptionPlumbing:
    def test_absent_source_dropped(self, line):
        net = make_network(line, filter_split_forward_approach())
        net.register_subscription("u2", sub("s", {"zzz": (0, 1)}))
        net.run_to_quiescence()
        assert net.dropped_subscriptions == ["s"]
        assert net.meter.subscription_units == 0

    def test_local_subscription_stored_whole(self, line):
        net = make_network(line, filter_split_forward_approach())
        net.register_subscription("u2", sub("s", {"a": (0, 10), "b": (0, 10)}))
        net.run_to_quiescence()
        node = net.nodes["u2"]
        assert len(node.local_subscriptions) == 1
        stored = node.stores[LOCAL].uncovered
        assert [op.op_id for op in stored] == ["s[a,b]"]

    def test_split_happens_at_divergence(self, fork):
        net = make_network(fork, filter_split_forward_approach())
        net.register_subscription("u1", sub("s", {"a": (0, 10), "b": (0, 10)}))
        net.run_to_quiescence()
        mid = net.nodes["mid"]
        assert [op.op_id for op in mid.stores["u1"].uncovered] == ["s[a,b]"]
        assert [op.op_id for op in net.nodes["s_a"].stores["mid"].uncovered] == ["s[a]"]
        assert [op.op_id for op in net.nodes["s_b"].stores["mid"].uncovered] == ["s[b]"]

    def test_chain_sheds_slots_progressively(self, line):
        net = make_network(line, filter_split_forward_approach())
        net.register_subscription(
            "u2", sub("s", {"a": (0, 10), "b": (0, 10), "c": (0, 10)})
        )
        net.run_to_quiescence()
        assert [op.op_id for op in net.nodes["hub"].stores["u1"].uncovered] == [
            "s[a,b,c]"
        ]
        assert [op.op_id for op in net.nodes["s_a"].stores["hub"].uncovered] == [
            "s[a,b,c]"
        ]
        assert [op.op_id for op in net.nodes["s_b"].stores["s_a"].uncovered] == [
            "s[b,c]"
        ]
        assert [op.op_id for op in net.nodes["s_c"].stores["s_b"].uncovered] == [
            "s[c]"
        ]

    def test_subscription_units_count_links(self, line):
        net = make_network(line, filter_split_forward_approach())
        net.register_subscription("u2", sub("s", {"a": (0, 10)}))
        net.run_to_quiescence()
        # u2->u1->hub->s_a : three links.
        assert net.meter.subscription_units == 3


class TestEventPlumbing:
    def test_duplicate_event_ignored(self, line):
        net = make_network(line, filter_split_forward_approach())
        net.register_subscription("u2", sub("s", {"a": (0, 10)}))
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0, seq=0)
        net.run_to_quiescence()
        units = net.meter.event_units
        publish(net, "a", 5.0, ts=net.sim.now + 1.0, seq=0)  # same key
        net.run_to_quiescence()
        assert net.meter.event_units == units

    def test_simple_operator_forwards_matching_only(self, line):
        net = make_network(line, filter_split_forward_approach())
        net.register_subscription("u2", sub("s", {"a": (0, 10)}))
        net.run_to_quiescence()
        publish(net, "a", 5.0, ts=100.0, seq=0)
        publish(net, "a", 50.0, ts=200.0, seq=1)
        net.run_to_quiescence()
        # Only the matching reading travels the three links.
        assert net.meter.event_units == 3
        delivered = net.delivery.delivered("s")
        assert {k for k in delivered} == {("a", 0)}

    def test_unrequested_sensor_never_forwarded(self, line):
        net = make_network(line, filter_split_forward_approach())
        net.register_subscription("u2", sub("s", {"a": (0, 10)}))
        net.run_to_quiescence()
        publish(net, "c", 5.0, ts=100.0)
        net.run_to_quiescence()
        assert net.meter.event_units == 0
