"""Tests for correlation operators: projection, splitting, coverage."""

import pytest

from repro.model import (
    IdentifiedSubscription,
    Interval,
    Location,
    SimpleEvent,
    operator_from_identified,
)
from repro.model.operators import CorrelationOperator, Slot
from repro.model.subscriptions import AbstractSubscription
from repro.model.locations import RectRegion
from repro.model.operators import operator_from_abstract


def sub3(delta_t=5.0):
    return IdentifiedSubscription.from_ranges(
        "s", {"a": ("t", 0, 10), "b": ("t", 20, 30), "c": ("t", 40, 50)}, delta_t
    )


def op3(delta_t=5.0):
    return operator_from_identified(sub3(delta_t), "n0")


def ev(sensor, value, ts=0.0, seq=0):
    return SimpleEvent(sensor, "t", Location(0, 0), value, ts, seq)


class TestConstruction:
    def test_root_from_identified(self):
        op = op3()
        assert op.slot_ids == {"a", "b", "c"}
        assert op.sensors == {"a", "b", "c"}
        assert not op.is_simple and not op.is_binary_join
        assert op.op_id == "s[a,b,c]"

    def test_root_from_abstract(self):
        region = RectRegion(Interval(0, 10), Interval(0, 10))
        s = AbstractSubscription.from_ranges("s", {"t": (0, 5)}, region, 2.0)
        op = operator_from_abstract(s, "n0", {"t": ["d1", "d2"]})
        assert op.slot("t").sensors == {"d1", "d2"}
        with pytest.raises(ValueError):
            operator_from_abstract(s, "n0", {"t": []})

    def test_duplicate_slots_rejected(self):
        slot = Slot("a", "t", Interval(0, 1), frozenset({"a"}))
        with pytest.raises(ValueError):
            CorrelationOperator("s", "n", [slot, slot], 1.0)

    def test_main_slot_must_exist(self):
        slot = Slot("a", "t", Interval(0, 1), frozenset({"a"}))
        with pytest.raises(ValueError):
            CorrelationOperator("s", "n", [slot], 1.0, main_slot="zzz")


class TestMatchingHelpers:
    def test_slot_accepts(self):
        op = op3()
        assert op.slot_for_event(ev("a", 5.0)).slot_id == "a"
        assert op.slot_for_event(ev("a", 11.0)) is None
        assert op.slot_for_event(ev("x", 5.0)) is None
        assert op.accepts_some(ev("b", 25.0))


class TestProjection:
    def test_project_subset(self):
        piece = op3().project(["a", "b"])
        assert piece.slot_ids == {"a", "b"}
        assert piece.subscription_id == "s" and piece.subscriber == "n0"
        assert piece.op_id == "s[a,b]"

    def test_project_unknown_slot(self):
        with pytest.raises(KeyError):
            op3().project(["a", "zzz"])

    def test_project_sensors_restricts(self):
        piece = op3().project_sensors(["b", "c"])
        assert piece.slot_ids == {"b", "c"}
        assert op3().project_sensors(["nope"]) is None

    def test_project_sensors_narrows_abstract_slot(self):
        region = RectRegion(Interval(0, 10), Interval(0, 10))
        s = AbstractSubscription.from_ranges("s", {"t": (0, 5)}, region, 2.0)
        op = operator_from_abstract(s, "n0", {"t": ["d1", "d2", "d3"]})
        piece = op.project_sensors(["d2"])
        assert piece.slot("t").sensors == {"d2"}


class TestBinaryJoins:
    def test_single_slot_unchanged(self):
        simple = op3().project(["a"])
        assert simple.binary_joins() == [simple]

    def test_two_slots_ring_of_two(self):
        # Each stream must be the main of one join — otherwise the
        # non-main stream's events never travel toward the user and
        # the instances they anchor are lost (recall < 1).
        two = op3().project(["a", "b"])
        joins = two.binary_joins()
        assert len(joins) == 2
        assert all(j.is_binary_join for j in joins)
        assert sorted(j.main_slot for j in joins) == ["a", "b"]

    def test_ring_pairing(self):
        joins = op3().binary_joins()
        assert len(joins) == 3
        mains = [j.main_slot for j in joins]
        assert sorted(mains) == ["a", "b", "c"]
        for j in joins:
            assert len(j.slots) == 2 and j.is_binary_join

    def test_binary_join_ids_distinct(self):
        ids = {j.op_id for j in op3().binary_joins()}
        assert len(ids) == 3


class TestCoverage:
    def test_self_coverage(self):
        assert op3().covers(op3())

    def test_wider_covers_narrower(self):
        narrow = operator_from_identified(
            IdentifiedSubscription.from_ranges(
                "s2", {"a": ("t", 2, 8), "b": ("t", 22, 28), "c": ("t", 42, 48)}, 5.0
            ),
            "n1",
        )
        assert op3().covers(narrow)
        assert not narrow.covers(op3())

    def test_different_slots_never_cover(self):
        assert not op3().project(["a", "b"]).covers(op3())
        assert not op3().covers(op3().project(["a", "b"]))

    def test_delta_t_direction(self):
        loose = op3(delta_t=10.0)
        tight_sub = IdentifiedSubscription.from_ranges(
            "s2", {"a": ("t", 0, 10), "b": ("t", 20, 30), "c": ("t", 40, 50)}, 5.0
        )
        tight = operator_from_identified(tight_sub, "n1")
        assert loose.covers(tight)
        assert not tight.covers(loose)

    def test_binary_join_signature_distinct(self):
        joins = op3().binary_joins()
        ab = next(j for j in joins if j.main_slot == "a")
        plain = op3().project(["a", "b"])
        assert not ab.covers(plain) and not plain.covers(ab)

    def test_as_box_slot_order(self):
        box = op3().as_box()
        assert box == (Interval(0, 10), Interval(20, 30), Interval(40, 50))

    def test_widened(self):
        w = op3().widened(1.0)
        assert w.slot("a").interval == Interval(-1, 11)
        assert op3().covers(op3()) and w.covers(op3())
        assert not op3().covers(w)
