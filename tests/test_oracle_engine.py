"""Machine-checked equivalence: engine-backed oracle ≡ reference scan.

The offline oracle now answers ground truth through the incremental
matching engine's per-slot timelines (``method="engine"``); the
original per-trigger window rescan stays selectable as
``method="reference"``.  These tests drive both passes over the same
randomized scenarios the engine-vs-reference matcher suite uses
(:mod:`test_matching_engine` — identified and abstract shapes, finite
and infinite ``delta_l``, duplicates, out-of-order timestamps, constant
ties) plus real deployment workloads, and require identical
``triggers`` and ``participants`` sets for every subscription.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.oracle import (
    EventIndex,
    compute_truth,
    default_oracle,
    operator_truth,
)
from repro.experiments.runner import REPLAY_START
from repro.network.topology import build_deployment
from repro.workload.sensorscope import ReplayConfig, build_replay
from repro.workload.subscriptions import (
    SubscriptionWorkloadConfig,
    generate_subscriptions,
)

from test_matching_engine import random_events, random_operator


def assert_same_truth(operator, events) -> int:
    """All three passes agree on one operator + event set; returns
    #triggers.  ``columnar`` rides the same probes as ``engine`` so the
    shared-lane matcher is fenced by the identical scenario corpus."""
    index = EventIndex(events)
    engine = operator_truth(operator, "q", index, method="engine")
    reference = operator_truth(operator, "q", index, method="reference")
    columnar = operator_truth(operator, "q", index, method="columnar")
    assert engine.triggers == reference.triggers
    assert engine.participants == reference.participants
    assert columnar.triggers == reference.triggers
    assert columnar.participants == reference.participants
    # And without the participant pass (the cheap triggers-only mode).
    lean = operator_truth(
        operator, "q", index, collect_participants=False, method="engine"
    )
    assert lean.triggers == reference.triggers
    assert not lean.participants
    return len(reference.triggers)


# 220 seeds ≥ the property-suite scenario floor, chunked so failures
# name a reproducible seed range (same convention as the matcher suite).
@pytest.mark.parametrize("chunk", range(22))
def test_oracle_engine_equals_reference_randomized(chunk):
    triggers = 0
    for seed in range(chunk * 10, chunk * 10 + 10):
        rng = np.random.default_rng(seed)
        operator = random_operator(rng)
        events = random_events(rng, operator, n=int(rng.integers(20, 45)))
        triggers += assert_same_truth(operator, events)
    # The generators are tuned so windows genuinely complete; an
    # all-empty chunk would mean the scenarios stopped testing anything.
    assert triggers > 0


class TestComputeTruthEndToEnd:
    """Full ``compute_truth`` equality on a real deployment workload —
    abstract operator resolution, grouped sensors, replayed events."""

    @pytest.fixture(scope="class")
    def arena(self):
        deployment = build_deployment(36, 4, seed=5)
        replay = build_replay(deployment, ReplayConfig(rounds=8, seed=5))
        workload = generate_subscriptions(
            deployment,
            replay.medians,
            SubscriptionWorkloadConfig(
                n_subscriptions=24, attrs_min=3, attrs_max=5, seed=5
            ),
            spreads=replay.spreads,
        )
        subs = [p.subscription for p in workload]
        return deployment, subs, replay.shifted(REPLAY_START)

    @pytest.mark.parametrize("method", ["engine", "columnar"])
    def test_engine_matches_reference(self, arena, method):
        deployment, subs, events = arena
        engine = compute_truth(subs, deployment, events, method=method)
        reference = compute_truth(subs, deployment, events, method="reference")
        assert set(engine) == set(reference)
        assert sum(t.n_instances for t in reference.values()) > 0
        for sub_id, truth in reference.items():
            assert engine[sub_id].triggers == truth.triggers, sub_id
            assert engine[sub_id].participants == truth.participants, sub_id

    def test_unknown_method_rejected(self, arena):
        deployment, subs, events = arena
        with pytest.raises(ValueError):
            compute_truth(subs[:1], deployment, events, method="psychic")


class TestOracleDefault:
    def test_default_is_engine(self, monkeypatch):
        monkeypatch.delenv("REPRO_ORACLE", raising=False)
        assert default_oracle() == "engine"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE", "reference")
        assert default_oracle() == "reference"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE", "fast")
        with pytest.raises(ValueError):
            default_oracle()
