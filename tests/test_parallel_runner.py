"""Tests for the sharded multi-process experiment runner.

Two families of guarantees:

* **merge fidelity** — `run_series_parallel` reconstructs the serial
  `SeriesResult` bit-identically (same `RunResult` dataclasses, point
  for point, same key order);
* **cross-process determinism** — a full `RunResult` (and a whole
  sharded series) is identical when computed in subprocesses with
  *different* `PYTHONHASHSEED` values, which is exactly what the
  replay-seeding fix (`repro.seeding`) buys: worker processes
  synthesize the same events the parent computed ground truth for.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

from benchlib import tiny_series_scenario

from repro.core import FSFConfig, filter_split_forward_approach
from repro.experiments import RunResult, run_series, run_series_parallel
from repro.experiments.parallel import (
    PointTask,
    default_workers,
    merge_points,
    point_tasks,
)
from repro.network.faults import FaultPlan, LinkFault
from repro.network.reliability import ReliabilityConfig
from repro.network.topology import build_deployment
from repro.protocols.registry import distributed_approaches
from repro.workload.program import QueryLifecycleConfig
from repro.workload.scenarios import Scenario
from repro.workload.sensorscope import ChurnConfig, DynamicReplayConfig

_SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")

# Shared with the serial-vs-sharded benchmarks, so both exercise the
# same workload (its module-level factory is picklable, as the sharded
# runner requires).
TINY = tiny_series_scenario()

# The dynamic/churn variant: multi-day drifting replay, 30% of sensors
# cycling — the sharded runner must reproduce the serial result (and be
# PYTHONHASHSEED-independent) with the churn machinery in the loop too.
TINY_CHURN = Scenario(
    key="tiny-churn",
    title="tiny churn scenario",
    deployment_factory=tiny_series_scenario().deployment_factory,
    paper_subscription_counts=(60, 120),
    attrs_min=3,
    attrs_max=5,
    dynamic=DynamicReplayConfig(days=2, rounds_per_day=6, day_seconds=100.0),
    churn=ChurnConfig(cycle_fraction=0.3),
)

# The query-lifecycle variant: a Poisson admit/retire stream on top of
# the static prefix — lifecycle edges must thread through worker memos
# (and across PYTHONHASHSEED values) exactly like churn does.
TINY_LIFECYCLE = Scenario(
    key="tiny-lifecycle",
    title="tiny admit/retire scenario",
    deployment_factory=tiny_series_scenario().deployment_factory,
    paper_subscription_counts=(60, 120),
    attrs_min=3,
    attrs_max=5,
    lifecycle=QueryLifecycleConfig(admit_rate=0.1, hold=20.0),
)

# The unreliable-transport variant: 10% link loss with the reliability
# layer on — every fault draw comes from one agenda-serialised stream,
# so the sharded runner must still reproduce the serial series exactly.
TINY_FAULTS = Scenario(
    key="tiny-faults-sharded",
    title="tiny faulty scenario",
    deployment_factory=tiny_series_scenario().deployment_factory,
    paper_subscription_counts=(60, 120),
    attrs_min=3,
    attrs_max=5,
    faults=FaultPlan(default=LinkFault(drop=0.1, jitter=0.02), seed=5),
    reliability=ReliabilityConfig(),
)


class TestMergeFidelity:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_series(TINY, distributed_approaches(), scale=0.1)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_sharded_equals_serial_bit_identically(self, serial, workers):
        parallel = run_series_parallel(
            TINY, distributed_approaches(), workers=workers, scale=0.1
        )
        assert parallel.counts == serial.counts
        assert list(parallel.results) == list(serial.results)  # key order
        assert parallel.results == serial.results  # RunResult dataclasses

    def test_in_process_fallback_equals_serial(self, serial):
        solo = run_series_parallel(
            TINY, distributed_approaches(), workers=1, scale=0.1
        )
        assert solo.results == serial.results

    def test_approach_keys_accepted_in_place_of_mapping(self, serial):
        keys = ["naive", "fsf"]
        parallel = run_series_parallel(TINY, keys, workers=2, scale=0.1)
        assert list(parallel.results) == keys
        for key in keys:
            assert parallel.results[key] == serial.results[key]

    def test_unknown_approach_rejected(self):
        with pytest.raises(ValueError, match="registry"):
            run_series_parallel(TINY, ["warp-drive"], workers=2, scale=0.1)

    def test_custom_fsf_config_harvested_from_mapping(self):
        """Workers rebuild approaches from the registry, so a custom
        FSFConfig carried only by the passed-in instances must be
        re-declared to them — silently running defaults would break the
        bit-identical contract."""
        cfg = FSFConfig(error_probability=0.5, gap_fraction=0.5, coarsening=2.0)
        approaches = {"fsf": filter_split_forward_approach(cfg)}
        serial = run_series(TINY, approaches, scale=0.1)
        parallel = run_series_parallel(TINY, approaches, workers=2, scale=0.1)
        assert parallel.results == serial.results
        default = run_series_parallel(TINY, ["fsf"], workers=2, scale=0.1)
        assert parallel.results != default.results  # the config matters

    def test_conflicting_fsf_config_rejected(self):
        approaches = {"fsf": filter_split_forward_approach(FSFConfig())}
        with pytest.raises(ValueError, match="fsf_config"):
            run_series_parallel(
                TINY,
                approaches,
                workers=2,
                scale=0.1,
                fsf_config=FSFConfig(error_probability=0.5),
            )

    def test_unpicklable_scenario_rejected_with_guidance(self):
        opaque = Scenario(
            key="lambda-factory",
            title="unpicklable",
            deployment_factory=lambda seed: build_deployment(24, 3, seed=seed),
            paper_subscription_counts=(60, 120),
        )
        with pytest.raises(ValueError, match="picklable"):
            run_series_parallel(opaque, ["naive"], workers=2, scale=0.1)

    def test_partition_is_counts_major_in_key_order(self):
        tasks = point_tasks(TINY, ["a", "b"], 0.1, 5.0, 0.05, None, None)
        assert [(t.n, t.approach_key) for t in tasks] == [
            (6, "a"), (6, "b"), (12, "a"), (12, "b"),
        ]
        rebuilt = merge_points(TINY, [6, 12], ["a", "b"], list(range(4)))
        assert rebuilt.results == {"a": [0, 2], "b": [1, 3]}

    def test_churn_sharded_equals_serial_bit_identically(self):
        """The dynamic scenario family through both runners: replay
        synthesis, churn scheduling and the churn-aware oracle must all
        reproduce identically in worker processes."""
        serial = run_series(TINY_CHURN, distributed_approaches(), scale=0.1)
        parallel = run_series_parallel(
            TINY_CHURN, distributed_approaches(), workers=2, scale=0.1
        )
        assert parallel.counts == serial.counts
        assert parallel.results == serial.results
        # The churn machinery genuinely ran: re-flood traffic accrued.
        assert all(
            r.reflood_load > 0 for runs in serial.results.values() for r in runs
        )

    def test_lifecycle_sharded_equals_serial_bit_identically(self):
        """The admit/retire family through both runners: program
        compilation, scheduled admissions/retirements and the
        per-lifetime oracle fences must all reproduce identically in
        worker processes — the tentpole acceptance check."""
        serial = run_series(TINY_LIFECYCLE, distributed_approaches(), scale=0.1)
        parallel = run_series_parallel(
            TINY_LIFECYCLE, distributed_approaches(), workers=2, scale=0.1
        )
        assert parallel.counts == serial.counts
        assert parallel.results == serial.results
        # The lifecycle machinery genuinely ran: queries were admitted
        # beyond the static prefix, retired, and teardown was metered.
        for runs in serial.results.values():
            for n, r in zip(serial.counts, runs):
                assert r.n_subscriptions > n
                assert r.retired_queries > 0
                assert r.teardown_load > 0
                assert r.admit_load > 0

    def test_faults_sharded_equals_serial_bit_identically(self):
        """The fault family through both runners: drop/jitter draws,
        retransmission timers and refresh rounds must all reproduce
        identically in worker processes — the plan is pure data and the
        draws replay from the seeded stream."""
        serial = run_series(TINY_FAULTS, distributed_approaches(), scale=0.1)
        parallel = run_series_parallel(
            TINY_FAULTS, distributed_approaches(), workers=2, scale=0.1
        )
        assert parallel.counts == serial.counts
        assert parallel.results == serial.results
        # The fault machinery genuinely ran: losses and retransmissions.
        for runs in serial.results.values():
            for r in runs:
                assert r.dropped_messages > 0
                assert r.retransmission_load > 0
                assert r.refresh_load > 0

    def test_workers_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            default_workers()


def _run_under_hashseed(script: str, hashseed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    out = subprocess.run(
        [sys.executable, "-c", script.format(path=_SRC)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout.strip()


class TestCrossProcessDeterminism:
    _POINT_SCRIPT = """
import sys; sys.path.insert(0, {path!r})
from repro.experiments.runner import REPLAY_START, run_point
from repro.metrics.oracle import compute_truth
from repro.network.topology import build_deployment
from repro.protocols.registry import all_approaches
from repro.workload.sensorscope import ReplayConfig, build_replay
from repro.workload.subscriptions import (
    SubscriptionWorkloadConfig,
    generate_subscriptions,
)

deployment = build_deployment(24, 3, seed=2)
replay = build_replay(deployment, ReplayConfig(rounds=6, seed=3))
workload = generate_subscriptions(
    deployment,
    replay.medians,
    SubscriptionWorkloadConfig(n_subscriptions=8, attrs_min=3, attrs_max=5, seed=2),
    spreads=replay.spreads,
)
events = replay.shifted(REPLAY_START)
print(repr(run_point(all_approaches()["fsf"], deployment, workload, events)))
"""

    _SERIES_SCRIPT = """
import sys; sys.path.insert(0, {path!r})
from repro.experiments import run_series_parallel
from repro.network.topology import build_deployment
from repro.workload.scenarios import Scenario

def factory(seed):
    return build_deployment(24, 3, seed=seed)

scenario = Scenario(
    key="xproc",
    title="cross-process determinism",
    deployment_factory=factory,
    paper_subscription_counts=(60, 120),
    attrs_min=3,
    attrs_max=5,
)
series = run_series_parallel(scenario, ["naive", "fsf"], workers=4, scale=0.1)
for key, runs in series.results.items():
    for result in runs:
        print(key, repr(result))
"""

    def test_run_point_dataclass_equal_across_hashseeds(self):
        """The satellite acceptance check: one full RunResult, two
        subprocesses, two different PYTHONHASHSEED values — equal as
        dataclasses, not merely as strings."""
        outs = [
            _run_under_hashseed(self._POINT_SCRIPT, seed)
            for seed in ("0", "1")
        ]
        results = [
            eval(out, {"RunResult": RunResult}) for out in outs  # noqa: S307
        ]
        assert isinstance(results[0], RunResult)
        assert results[0] == results[1]
        assert results[0].n_subscriptions == 8

    def test_sharded_series_equal_across_hashseeds(self):
        """The tentpole acceptance check, scaled to test budget: the
        sharded runner's whole SeriesResult is identical under two
        PYTHONHASHSEED values."""
        a = _run_under_hashseed(self._SERIES_SCRIPT, "0")
        b = _run_under_hashseed(self._SERIES_SCRIPT, "31337")
        assert a == b
        assert "naive" in a and "fsf" in a

    _CHURN_SCRIPT = """
import sys; sys.path.insert(0, {path!r})
from repro.experiments import run_series_parallel
from repro.network.topology import build_deployment
from repro.workload.scenarios import Scenario
from repro.workload.sensorscope import (
    ChurnConfig,
    DynamicReplayConfig,
    build_dynamic_replay,
)

def factory(seed):
    return build_deployment(24, 3, seed=seed)

scenario = Scenario(
    key="xproc-churn",
    title="cross-process churn determinism",
    deployment_factory=factory,
    paper_subscription_counts=(60, 120),
    attrs_min=3,
    attrs_max=5,
    dynamic=DynamicReplayConfig(days=2, rounds_per_day=6, day_seconds=100.0),
    churn=ChurnConfig(cycle_fraction=0.3),
)
replay = build_dynamic_replay(
    factory(scenario.seed), scenario.dynamic, scenario.churn
)
print(sorted(replay.churn.intervals.items()))
print(len(replay.events), repr(replay.events[0]), repr(replay.events[-1]))
series = run_series_parallel(scenario, ["naive", "fsf"], workers=2, scale=0.1)
for key, runs in series.results.items():
    for result in runs:
        print(key, repr(result))
"""

    def test_churn_series_and_schedule_equal_across_hashseeds(self):
        """Dynamic replay + churn schedule are bit-identical across
        PYTHONHASHSEED subprocesses, and so is the sharded churn series
        built from them (the satellite acceptance check)."""
        a = _run_under_hashseed(self._CHURN_SCRIPT, "0")
        b = _run_under_hashseed(self._CHURN_SCRIPT, "424242")
        assert a == b
        assert "reflood_load" in a and "d0_" in a

    _LIFECYCLE_SCRIPT = """
import sys; sys.path.insert(0, {path!r})
from repro.experiments import run_series_parallel
from repro.network.topology import build_deployment
from repro.workload.program import QueryLifecycleConfig
from repro.workload.scenarios import Scenario

def factory(seed):
    return build_deployment(24, 3, seed=seed)

scenario = Scenario(
    key="xproc-lifecycle",
    title="cross-process admit/retire determinism",
    deployment_factory=factory,
    paper_subscription_counts=(60, 120),
    attrs_min=3,
    attrs_max=5,
    lifecycle=QueryLifecycleConfig(admit_rate=0.1, hold=20.0),
)
program = scenario.program(12)
source = program.source(factory(scenario.seed))
print(source.edges)
series = run_series_parallel(scenario, ["naive", "fsf"], workers=2, scale=0.1)
for key, runs in series.results.items():
    for result in runs:
        print(key, repr(result))
"""

    def test_lifecycle_series_and_schedule_equal_across_hashseeds(self):
        """The Poisson admit/retire draws and the whole sharded series
        built from them are bit-identical across PYTHONHASHSEED
        subprocesses — the acceptance criterion of the workload-program
        tentpole."""
        a = _run_under_hashseed(self._LIFECYCLE_SCRIPT, "0")
        b = _run_under_hashseed(self._LIFECYCLE_SCRIPT, "31337")
        assert a == b
        assert "LifecycleEdge" in a
        assert "retired_queries=" in a and "retired_queries=0" not in a

    _FAULTS_SCRIPT = """
import sys; sys.path.insert(0, {path!r})
from repro.experiments import run_series_parallel
from repro.network.faults import FaultPlan, LinkFault
from repro.network.reliability import ReliabilityConfig
from repro.network.topology import build_deployment
from repro.workload.scenarios import Scenario

def factory(seed):
    return build_deployment(24, 3, seed=seed)

scenario = Scenario(
    key="xproc-faults",
    title="cross-process fault-draw determinism",
    deployment_factory=factory,
    paper_subscription_counts=(60, 120),
    attrs_min=3,
    attrs_max=5,
    faults=FaultPlan(default=LinkFault(drop=0.1, jitter=0.02), seed=5),
    reliability=ReliabilityConfig(),
)
series = run_series_parallel(scenario, ["naive", "fsf"], workers=2, scale=0.1)
for key, runs in series.results.items():
    for result in runs:
        print(key, repr(result))
"""

    def test_faulty_series_equal_across_hashseeds(self):
        """Every drop, jitter and retransmission draw comes from a
        stream keyed by the *stable* hash of ``faults:<seed>``, so a
        sharded series over a faulty transport is bit-identical across
        PYTHONHASHSEED subprocesses — the fault tentpole's acceptance
        check."""
        a = _run_under_hashseed(self._FAULTS_SCRIPT, "0")
        b = _run_under_hashseed(self._FAULTS_SCRIPT, "424242")
        assert a == b
        assert "dropped_messages=" in a and "dropped_messages=0" not in a
        assert "retransmission_load=" in a
