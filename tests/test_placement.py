"""The placement subsystem: architecture graph, cost model, compiler.

Three layers of guarantees:

* **architecture graph** — ``NodeSpec`` validation, the tiered
  decoration of the small-scale deployment (same graph, same sensors,
  only ``specs`` differs), and the extended ``Deployment.validate``;
* **compiler** — plans are deterministic closed-form artefacts:
  bit-identical across compilations, never modelled worse than the
  paper heuristic (always a candidate), structurally well-formed
  (rendezvous on the query's Steiner tree, leaf pieces covering every
  sensor), and picklable for the sharded runner;
* **null fence** — ``placement="paper"`` compiles to ``plans=None``
  and registration without a plan is the pre-placement code path
  bit-for-bit, for every approach and both matching engines (the
  hypothesis property below).
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api.session import QueryError, Session
from repro.baselines import (
    centralized_approach,
    multijoin_approach,
    naive_approach,
    operator_placement_approach,
)
from repro.core import FSFConfig, filter_split_forward_approach
from repro.model import IdentifiedSubscription
from repro.network.network import Network
from repro.network.topology import (
    BASE_STATION_SPEC,
    CLOUD_SPEC,
    MOTE_SPEC,
    Deployment,
    NodeSpec,
    small_scale,
    tiered_small_scale,
)
from repro.placement import compile_placement
from repro.sim import Simulator
from repro.workload.program import WorkloadProgram
from repro.workload.scenarios import PLACEMENT
from repro.workload.subscriptions import SubscriptionWorkloadConfig

from deployments import line_deployment, make_network, publish


# ---------------------------------------------------------------------------
# architecture graph
# ---------------------------------------------------------------------------


def test_node_spec_validation():
    with pytest.raises(ValueError, match="unknown tier"):
        NodeSpec("mainframe")
    with pytest.raises(ValueError, match="link_bandwidth"):
        NodeSpec("mote", link_bandwidth=0.0)
    with pytest.raises(ValueError, match="compute_rate"):
        NodeSpec("cloud", compute_rate=-1.0)


def test_tiered_small_scale_decorates_without_touching_the_topology():
    plain = small_scale()
    tiered = tiered_small_scale()
    assert nx.utils.graphs_equal(plain.graph, tiered.graph)
    assert plain.sensors == tiered.sensors
    assert plain.group_heads == tiered.group_heads
    assert plain.is_homogeneous
    assert not tiered.is_homogeneous
    # Every node is assigned; hosts are motes, heads base stations,
    # exactly one cloud uplink on the backbone.
    assert set(tiered.specs) == set(tiered.graph.nodes)
    for host in tiered.sensor_nodes:
        assert tiered.spec_of(host) == MOTE_SPEC
    clouds = [n for n, s in tiered.specs.items() if s == CLOUD_SPEC]
    assert len(clouds) == 1
    assert clouds[0] in tiered.relay_nodes
    # Heads are base stations — except one may double as the cloud
    # uplink (the backbone centre outranks the head role).
    for head in set(tiered.group_heads.values()) - set(clouds):
        assert tiered.spec_of(head) == BASE_STATION_SPEC


def test_validate_rejects_broken_graphs():
    base = line_deployment()
    cyclic = Deployment(
        graph=base.graph.copy(),
        sensors=base.sensors,
        groups=base.groups,
        relay_nodes=base.relay_nodes,
        group_heads=base.group_heads,
        seed=base.seed,
    )
    cyclic.graph.add_edge("u2", "hub")
    with pytest.raises(ValueError, match="acyclic"):
        cyclic.validate()

    missing_host = Deployment(
        graph=base.graph.copy(),
        sensors=base.sensors,
        groups=base.groups,
        relay_nodes=base.relay_nodes,
        group_heads=base.group_heads,
        seed=base.seed,
    )
    missing_host.graph.remove_node("s_c")
    with pytest.raises(ValueError, match="hosting nodes missing"):
        missing_host.validate()

    stray_spec = Deployment(
        graph=base.graph,
        sensors=base.sensors,
        groups=base.groups,
        relay_nodes=base.relay_nodes,
        group_heads=base.group_heads,
        seed=base.seed,
        specs={"no_such_node": NodeSpec()},
    )
    with pytest.raises(ValueError, match="unknown nodes"):
        stray_spec.validate()


# ---------------------------------------------------------------------------
# compiler invariants
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def compiled_placement_point():
    scenario = replace(PLACEMENT, placement="compiled")
    program = scenario.program(8)
    deployment = scenario.deployment()
    source = program.source(deployment)
    return deployment, program.with_prefix(8).compile(deployment, source)


def test_compiled_program_carries_plans(compiled_placement_point):
    deployment, compiled = compiled_placement_point
    assert compiled.plans is not None
    assert set(compiled.plans) == {a.sub_id for a in compiled.admissions}
    for admission in compiled.admissions:
        assert compiled.plan_for(admission.sub_id) is compiled.plans[admission.sub_id]


def test_plans_are_structurally_sound(compiled_placement_point):
    deployment, compiled = compiled_placement_point
    host_of = {s.sensor_id: s.node_id for s in deployment.sensors}
    for admission in compiled.admissions:
        plan = compiled.plans[admission.sub_id]
        sensors = set(admission.subscription.sensor_ids)
        # The rendezvous lies on the query's Steiner tree.
        steiner = {
            node
            for s in sensors
            for node in nx.shortest_path(
                deployment.graph, admission.node_id, host_of[s]
            )
        }
        assert plan.rendezvous in steiner
        # Never modelled worse than the paper heuristic.
        assert plan.cost <= plan.paper_cost
        # The hop table's leaf pieces cover every sensor: each sensor's
        # host terminates a piece containing it.
        for sensor_id in sensors:
            host = host_of[sensor_id]
            held = [
                hop for hop in plan.hops
                if hop.node_id == host and sensor_id in hop.sensors
            ]
            terminal = sensor_id in {
                s
                for s in sensors
                if host_of[s] == host
            }
            assert held or terminal


def test_compilation_is_bit_identical(compiled_placement_point):
    deployment, compiled = compiled_placement_point
    program = replace(PLACEMENT, placement="compiled").program(8)
    source = program.source(deployment)
    again = program.with_prefix(8).compile(deployment, source)
    assert again.plans == compiled.plans
    for sub_id, plan in compiled.plans.items():
        other = again.plans[sub_id]
        # Float bit-identity, not approximate equality.
        assert (plan.cost, plan.paper_cost) == (other.cost, other.paper_cost)


def test_plans_survive_pickling(compiled_placement_point):
    deployment, compiled = compiled_placement_point
    for plan in compiled.plans.values():
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        for hop in plan.hops:
            assert clone.next_hops(hop.node_id, frozenset(hop.sensors)) == tuple(
                (neighbor, frozenset(subset)) for neighbor, subset in hop.next
            )


# ---------------------------------------------------------------------------
# gating
# ---------------------------------------------------------------------------


def test_compiled_placement_rejects_churn_and_faults():
    subs = SubscriptionWorkloadConfig(n_subscriptions=5)
    from repro.network.faults import FaultPlan
    from repro.workload.sensorscope import ChurnConfig, DynamicReplayConfig

    with pytest.raises(ValueError, match="churn"):
        WorkloadProgram(
            subscriptions=subs,
            dynamic=DynamicReplayConfig(),
            churn=ChurnConfig(),
            placement="compiled",
        )
    with pytest.raises(ValueError, match="unreliable transport"):
        WorkloadProgram(
            subscriptions=subs, faults=FaultPlan(), placement="compiled"
        )
    with pytest.raises(ValueError, match="placement"):
        WorkloadProgram(subscriptions=subs, placement="optimal")


def test_unplannable_approaches_refuse_plans():
    deployment = line_deployment()
    sub = IdentifiedSubscription.from_ranges(
        "q0", {"a": ("t", 0.0, 10.0), "b": ("t", 0.0, 10.0)}, delta_t=5.0
    )
    plans = compile_placement(
        deployment,
        [type("Adm", (), {"sub_id": "q0", "node_id": "u2", "subscription": sub})()],
        [],
    )
    for approach in (centralized_approach(), multijoin_approach()):
        session = Session.create(approach=approach, deployment=deployment)
        with pytest.raises(QueryError, match="placement"):
            session.submit(sub, at="u2", plan=plans["q0"])


# ---------------------------------------------------------------------------
# the null-plan fence (hypothesis property)
# ---------------------------------------------------------------------------

APPROACHES = {
    "naive": naive_approach,
    "operator_placement": operator_placement_approach,
    "multijoin": multijoin_approach,
    "centralized": centralized_approach,
    "fsf": lambda: filter_split_forward_approach(FSFConfig()),
}


def _run_registrations(approach_key, matching, subs, raw_events, with_kwarg):
    deployment = line_deployment()
    network = Network(
        deployment, Simulator(seed=0), delta_t=5.0, matching=matching
    )
    approach = APPROACHES[approach_key]()
    approach.populate(network)
    network.attach_all_sensors()
    network.run_to_quiescence()
    for sub in subs:
        if with_kwarg:
            network.register_subscription("u2", sub, plan=None)
        else:
            network.register_subscription("u2", sub)
    network.run_to_quiescence()
    t0 = network.sim.now + 10.0
    for i, (sensor, value, dt) in enumerate(raw_events):
        publish(network, sensor, value, ts=t0 + dt, seq=i)
    network.run_to_quiescence()
    delivered = {
        sub.sub_id: sorted(network.delivery.delivered(sub.sub_id))
        for sub in subs
    }
    return network.meter.snapshot(), delivered


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    approach_key=st.sampled_from(sorted(APPROACHES)),
    matching=st.sampled_from(["incremental", "columnar"]),
    sensors=st.sets(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3),
    raw_events=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.floats(0, 12, allow_nan=False),
            st.floats(0, 30, allow_nan=False),
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_null_plan_is_the_legacy_registration_path(
    approach_key, matching, sensors, raw_events
):
    """``plan=None`` must be byte-identical to pre-placement submit.

    Same traffic snapshot, same deliveries, for every approach and
    both matching engines — the machine check that the placement
    subsystem is invisible until a plan is actually passed.
    """
    subs = [
        IdentifiedSubscription.from_ranges(
            "q0", {s: ("t", 0.0, 8.0) for s in sorted(sensors)}, delta_t=5.0
        )
    ]
    legacy = _run_registrations(approach_key, matching, subs, raw_events, False)
    fenced = _run_registrations(approach_key, matching, subs, raw_events, True)
    assert legacy == fenced


def test_paper_placement_compiles_to_null_plans():
    """placement="paper" (and the default) never materialises plans."""
    deployment = PLACEMENT.deployment()
    assert PLACEMENT.placement == "paper"  # the scenario's default lane
    paper = WorkloadProgram(
        subscriptions=PLACEMENT.workload_config(6),
        replay=PLACEMENT.replay,
        placement="paper",
    )
    source = paper.source(deployment)
    compiled = paper.with_prefix(6).compile(deployment, source)
    assert compiled.plans is None
    assert compiled.plan_for("q00000") is None
