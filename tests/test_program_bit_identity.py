"""Bit-identity of the program-driven runner vs the historical wiring.

The experiment runner was re-platformed from hand-rolled
``Network``+``Simulator`` construction onto workload programs executed
through the Session facade.  The figure history must stay comparable:
a **settled program with admit-at-t=0 and no retire** has to reproduce
the pre-facade fixed-prefix ``run_point`` results *exactly* — every
``RunResult`` field, across all five approaches and both matching
modes.

``legacy_run_point`` below is a faithful transcription of the retired
wiring (fresh simulator, manual populate/attach/flood, sequential
settled registrations, raw ``schedule_timeline`` replay); the suite
machine-checks the facade path against it, including under churn, and
pins the sharded runner to the same results.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    REPLAY_START,
    RunResult,
    run_point,
    run_program,
    shifted_churn,
)
from repro.metrics.oracle import compute_truth
from repro.metrics.recall import measure_recall
from repro.network.network import Network
from repro.network.topology import build_deployment
from repro.protocols.registry import all_approaches
from repro.sim import Simulator
from repro.workload.program import WorkloadProgram
from repro.workload.sensorscope import (
    ChurnConfig,
    DynamicReplayConfig,
    ReplayConfig,
    build_dynamic_replay,
    build_replay,
)
from repro.workload.subscriptions import (
    SubscriptionWorkloadConfig,
    generate_subscriptions,
)

MATCHING_MODES = ("incremental", "reference")


def legacy_run_point(
    approach,
    deployment,
    placed,
    events,
    truths=None,
    delta_t=5.0,
    latency=0.05,
    churn=None,
    matching="incremental",
) -> RunResult:
    """The pre-program experiment wiring, preserved verbatim as the
    reference the facade path is pinned against."""
    sim = Simulator(seed=deployment.seed)
    network = Network(
        deployment, sim, latency=latency, delta_t=delta_t, matching=matching
    )
    approach.populate(network)
    network.attach_all_sensors()
    network.run_to_quiescence()
    after_ads = network.meter.snapshot()
    for item in placed:
        network.register_subscription(item.node_id, item.subscription)
        network.run_to_quiescence()
    after_subs = network.meter.snapshot()
    assert sim.now < REPLAY_START
    node_of_sensor = {s.sensor_id: s.node_id for s in deployment.sensors}
    sim.schedule_timeline(
        (
            event.timestamp,
            lambda e=event: network.publish(node_of_sensor[e.sensor_id], e),
        )
        for event in events
    )
    if churn is not None:
        network.schedule_churn(churn)
    network.run_to_quiescence()
    final = network.meter.snapshot()
    if truths is None:
        truths = compute_truth(
            [p.subscription for p in placed], deployment, events, churn=churn
        )
    report = measure_recall(truths, network.delivery)
    sub_traffic = after_subs.minus(after_ads)
    event_traffic = final.minus(after_subs)
    return RunResult(
        approach=approach.key,
        n_subscriptions=len(placed),
        subscription_load=sub_traffic.subscription_units,
        event_load=event_traffic.event_units,
        advertisement_load=after_ads.advertisement_units,
        recall=report.recall,
        false_positive_rate=report.false_positive_rate,
        true_instances=report.true_instances,
        delivered_instances=report.delivered_instances,
        delivered_events=report.delivered_events,
        dropped_subscriptions=len(network.dropped_subscriptions),
        complex_deliveries=sum(network.delivery.complex_deliveries.values()),
        sim_events=sim.processed_events,
        reflood_load=final.advertisement_units - after_ads.advertisement_units,
        admit_load=event_traffic.subscription_units
        - event_traffic.teardown_units,
        teardown_load=event_traffic.teardown_units,
        retired_queries=0,
    )


@pytest.fixture(scope="module")
def static_workload():
    deployment = build_deployment(24, 3, seed=2)
    replay = build_replay(deployment, ReplayConfig(rounds=6, seed=3))
    workload = generate_subscriptions(
        deployment,
        replay.medians,
        SubscriptionWorkloadConfig(
            n_subscriptions=8, attrs_min=3, attrs_max=5, seed=2
        ),
        spreads=replay.spreads,
    )
    return deployment, workload, replay.shifted(REPLAY_START)


@pytest.fixture(scope="module")
def churn_workload():
    deployment = build_deployment(24, 3, seed=4)
    replay = build_dynamic_replay(
        deployment,
        DynamicReplayConfig(days=2, rounds_per_day=6, day_seconds=100.0),
        ChurnConfig(cycle_fraction=0.3),
    )
    workload = generate_subscriptions(
        deployment,
        replay.medians,
        SubscriptionWorkloadConfig(
            n_subscriptions=6, attrs_min=3, attrs_max=5, seed=4
        ),
        spreads=replay.spreads,
    )
    return (
        deployment,
        workload,
        replay.shifted(REPLAY_START),
        shifted_churn(replay),
    )


class TestSettledProgramBitIdentity:
    """The satellite acceptance check: settled admit-at-t=0, no retire,
    machine-checked equal to the historical wiring."""

    @pytest.mark.parametrize("matching", MATCHING_MODES)
    def test_all_approaches_static(self, static_workload, matching):
        deployment, workload, events = static_workload
        for key, approach in all_approaches().items():
            expected = legacy_run_point(
                approach, deployment, workload, events, matching=matching
            )
            actual = run_point(
                approach, deployment, workload, events, matching=matching
            )
            assert actual == expected, (key, matching)
            assert actual.retired_queries == 0
            assert actual.teardown_load == 0

    @pytest.mark.parametrize("matching", MATCHING_MODES)
    def test_all_approaches_under_churn(self, churn_workload, matching):
        """Churn keeps the advertisement channel live mid-replay; the
        facade path must still match the historical wiring exactly."""
        deployment, workload, events, churn = churn_workload
        for key, approach in all_approaches().items():
            expected = legacy_run_point(
                approach,
                deployment,
                workload,
                events,
                churn=churn,
                matching=matching,
            )
            actual = run_point(
                approach,
                deployment,
                workload,
                events,
                churn=churn,
                matching=matching,
            )
            assert actual == expected, (key, matching)
            assert actual.reflood_load > 0

    def test_program_entry_point_matches_run_point(self, static_workload):
        """Driving the same prefix through an actual WorkloadProgram
        (source -> compile -> run_program) is the same experiment."""
        deployment, workload, events = static_workload
        program = WorkloadProgram(
            subscriptions=SubscriptionWorkloadConfig(
                n_subscriptions=8, attrs_min=3, attrs_max=5, seed=2
            ),
            replay=ReplayConfig(rounds=6, seed=3),
        )
        compiled = program.compile(deployment)
        approach = all_approaches()["fsf"]
        assert run_program(approach, compiled) == run_point(
            approach, deployment, workload, events
        )

    def test_program_truth_equals_direct_truth(self, static_workload):
        deployment, workload, events = static_workload
        program = WorkloadProgram(
            subscriptions=SubscriptionWorkloadConfig(
                n_subscriptions=8, attrs_min=3, attrs_max=5, seed=2
            ),
            replay=ReplayConfig(rounds=6, seed=3),
        )
        compiled = program.compile(deployment)
        direct = compute_truth(
            [p.subscription for p in workload], deployment, events
        )
        via_program = compiled.truth()
        assert set(via_program) == set(direct)
        for sub_id, truth in via_program.items():
            assert truth.triggers == direct[sub_id].triggers
            assert truth.participants == direct[sub_id].participants
