"""Property-based cross-approach invariants on randomized workloads.

For randomly drawn subscription sets and event values on a fixed small
overlay, the guarantees of Section VI must hold regardless of the draw:

* the deterministic approaches (naive, operator placement, multi-join,
  centralized) deliver every oracle participant — recall 1.0;
* FSF never delivers anything naive would not (it only *removes*
  redundancy, never invents results);
* per-link dedup: no approach with publish/subscribe forwarding sends
  one event twice over one link;
* exact-filtering FSF never exceeds operator placement's subscription
  load (set subsumption subsumes pair-wise coverage).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import (
    multijoin_approach,
    naive_approach,
    operator_placement_approach,
)
from repro.core import FSFConfig, filter_split_forward_approach
from repro.experiments.runner import REPLAY_START
from repro.metrics.oracle import compute_truth
from repro.metrics.recall import measure_recall
from repro.model import IdentifiedSubscription

from deployments import line_deployment, make_network, publish


def sub_strategy():
    rng = st.tuples(st.floats(0, 10, allow_nan=False), st.floats(0, 10, allow_nan=False))
    sensors = st.sets(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3)

    def build(args):
        idx, sensor_set, ranges = args
        chosen = sorted(sensor_set)
        return IdentifiedSubscription.from_ranges(
            f"q{idx}",
            {
                s: ("t", min(r), max(r))
                for s, r in zip(chosen, ranges)
            },
            delta_t=5.0,
        )

    return st.tuples(
        st.integers(0, 10_000), sensors, st.lists(rng, min_size=3, max_size=3)
    ).map(build)


def event_strategy():
    return st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.floats(0, 12, allow_nan=False),
            st.floats(0, 30, allow_nan=False),
        ),
        min_size=1,
        max_size=10,
    )


def run(approach, subs, raw_events):
    net = make_network(line_deployment(), approach)
    for i, s in enumerate(subs):
        net.register_subscription("u2", s)
    net.run_to_quiescence()
    t0 = net.sim.now + 10.0
    events = []
    for i, (sensor, value, dt) in enumerate(raw_events):
        events.append(publish(net, sensor, value, ts=t0 + dt, seq=i))
    net.run_to_quiescence()
    return net, events


common = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@common
@given(st.lists(sub_strategy(), min_size=1, max_size=4, unique_by=lambda s: s.sub_id),
       event_strategy())
def test_deterministic_approaches_full_recall(subs, raw_events):
    for approach in (naive_approach(), operator_placement_approach(), multijoin_approach()):
        net, events = run(approach, subs, raw_events)
        truths = compute_truth(subs, net.deployment, list(events))
        report = measure_recall(truths, net.delivery)
        assert report.recall == 1.0, approach.key


@common
@given(st.lists(sub_strategy(), min_size=1, max_size=4, unique_by=lambda s: s.sub_id),
       event_strategy())
def test_fsf_delivers_subset_of_naive(subs, raw_events):
    fsf_net, _ = run(
        filter_split_forward_approach(FSFConfig(exact_filtering=True)),
        subs,
        raw_events,
    )
    naive_net, _ = run(naive_approach(), subs, raw_events)
    for s in subs:
        fsf_keys = set(fsf_net.delivery.delivered(s.sub_id))
        naive_keys = set(naive_net.delivery.delivered(s.sub_id))
        assert fsf_keys <= naive_keys, s.sub_id


@common
@given(st.lists(sub_strategy(), min_size=1, max_size=5, unique_by=lambda s: s.sub_id),
       event_strategy())
def test_pubsub_never_repeats_an_event_on_a_link(subs, raw_events):
    for approach in (
        filter_split_forward_approach(FSFConfig(exact_filtering=True)),
        multijoin_approach(),
    ):
        net, events = run(approach, subs, raw_events)
        n_events = len({e.key for e in events})
        for link, count in net.meter.per_link_events.items():
            assert count <= n_events, (approach.key, link, count)


@common
@given(st.lists(sub_strategy(), min_size=1, max_size=5, unique_by=lambda s: s.sub_id))
def test_exact_fsf_subscription_load_at_most_operator_placement(subs):
    fsf_net, _ = run(
        filter_split_forward_approach(FSFConfig(exact_filtering=True)), subs, []
    )
    op_net, _ = run(operator_placement_approach(), subs, [])
    assert (
        fsf_net.meter.subscription_units <= op_net.meter.subscription_units
    )


@common
@given(st.lists(sub_strategy(), min_size=1, max_size=4, unique_by=lambda s: s.sub_id),
       event_strategy())
def test_fsf_event_load_at_most_naive(subs, raw_events):
    fsf_net, _ = run(
        filter_split_forward_approach(FSFConfig(exact_filtering=True)),
        subs,
        raw_events,
    )
    naive_net, _ = run(naive_approach(), subs, raw_events)
    assert fsf_net.meter.event_units <= naive_net.meter.event_units
