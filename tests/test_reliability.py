"""The opt-in reliability layer: acks, retransmission, soft state.

Covers the four behaviours the fault tentpole promises:

* **retransmission** — control traffic crosses lossy links anyway, and
  the extra copies are billed to ``retransmission_units``;
* **bounded retries** — a dead link abandons transfers after
  ``max_retries`` (quiescence always exists), and the backoff schedule
  provably never fires in the past (hypothesis property);
* **duplicates stay invisible** — re-delivered event copies never
  double-count a match (hypothesis property over seeded arenas);
* **soft state** — remote advertisements expire after missed refresh
  rounds, recovered brokers re-learn everything within one round, and a
  correlated base-station outage recovers to recall 1.0 after the
  refresh interval (the acceptance criterion, run at figure fidelity).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from deployments import line_deployment

from repro.experiments.runner import REPLAY_START, run_series
from repro.network.faults import FaultPlan, LinkFault, OutageWindow
from repro.network.messages import EventMessage
from repro.network.network import Network
from repro.network.reliability import ReliabilityConfig, is_control
from repro.network.topology import build_deployment
from repro.protocols.registry import all_approaches
from repro.sim import Simulator
from repro.workload.scenarios import Scenario
from repro.workload.sensorscope import ReplayConfig, build_replay
from repro.workload.subscriptions import (
    SubscriptionWorkloadConfig,
    generate_subscriptions,
)

_property_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="ack_timeout"):
            ReliabilityConfig(ack_timeout=0.0)
        with pytest.raises(ValueError, match="backoff"):
            ReliabilityConfig(backoff=0.5)
        with pytest.raises(ValueError, match="max_retries"):
            ReliabilityConfig(max_retries=-1)
        with pytest.raises(ValueError, match="refresh_interval"):
            ReliabilityConfig(refresh_interval=float("nan"))
        with pytest.raises(ValueError, match="expiry_rounds"):
            ReliabilityConfig(expiry_rounds=0)

    def test_is_control_classifies_message_kinds(self):
        from repro.model.events import SimpleEvent
        from repro.model.locations import Location

        event = SimpleEvent("a", "t", Location(0.0, 0.0), 1.0, 0.0, seq=0)
        assert not is_control(EventMessage(event, ()))
        from repro.network.messages import UnsubscribeMessage

        assert is_control(UnsubscribeMessage("q1"))

    @given(
        ack_timeout=st.floats(min_value=1e-3, max_value=10.0),
        backoff=st.floats(min_value=1.0, max_value=5.0),
        attempts=st.integers(min_value=0, max_value=9),
    )
    @_property_settings
    def test_retries_never_schedule_in_the_past(
        self, ack_timeout, backoff, attempts
    ):
        """The backoff schedule is positive and non-decreasing for any
        valid config — a retransmission timer can never land before the
        attempt that armed it."""
        cfg = ReliabilityConfig(ack_timeout=ack_timeout, backoff=backoff)
        delays = [cfg.retry_delay(k) for k in range(attempts + 1)]
        assert all(d > 0 for d in delays)
        assert delays == sorted(delays)


def _flooded_network(plan: FaultPlan, reliability=None) -> Network:
    network = Network(
        line_deployment(),
        Simulator(seed=0),
        faults=plan,
        reliability=reliability,
    )
    all_approaches()["naive"].populate(network)
    network.attach_all_sensors()
    network.run_to_quiescence()
    return network


class TestAckedTransfers:
    def test_retransmission_carries_control_over_a_lossy_link(self):
        """A 50% link cannot stop the advertisement flood once acks and
        retransmissions are on — and without them, it does."""
        plan = FaultPlan(
            links=(("s_a", "hub", LinkFault(drop=0.5)),), seed=11
        )
        reliable = _flooded_network(plan, ReliabilityConfig())
        for sensor_id in ("a", "b", "c"):
            assert reliable.nodes["u2"].ads.get(sensor_id) is not None
        snap = reliable.meter.snapshot()
        assert snap.retransmission_units > 0
        assert snap.dropped_messages > 0

        best_effort = _flooded_network(plan)
        lost = [
            sensor_id
            for sensor_id in ("a", "b", "c")
            if best_effort.nodes["u2"].ads.get(sensor_id) is None
        ]
        assert lost, "every flood survived a 50% link without retries?"
        assert best_effort.meter.snapshot().retransmission_units == 0

    def test_dead_link_abandons_after_bounded_retries(self):
        """drop=1.0 still quiesces: each transfer is attempted exactly
        ``max_retries + 1`` times, then abandoned."""
        cfg = ReliabilityConfig(max_retries=3)
        plan = FaultPlan(links=(("hub", "u1", LinkFault(drop=1.0)),), seed=2)
        network = _flooded_network(plan, cfg)
        # Nothing crossed the dead link: the user side never learns ads.
        assert network.nodes["u1"].ads.get("a") is None
        assert network.nodes["u2"].ads.get("a") is None
        transport = network.transport
        assert transport is not None
        assert transport.abandoned_transfers == 3  # one per advertisement
        # Each abandoned ad paid max_retries retransmissions of 1 unit.
        snap = network.meter.snapshot()
        assert snap.retransmission_units == 3 * cfg.max_retries
        assert not transport._live  # no timers or transfers leak

    def test_ack_traffic_is_free(self):
        """A fault-free reliable flood meters exactly the same units as
        the best-effort flood — acks and timers add no accounting."""
        reliable = _flooded_network(FaultPlan.none(), ReliabilityConfig())
        baseline = _flooded_network(FaultPlan.none())
        assert reliable.meter.snapshot() == baseline.meter.snapshot()


# ---------------------------------------------------------------------------
# duplicate invisibility + convergence properties
# ---------------------------------------------------------------------------
def _static_arena(seed: int):
    deployment = build_deployment(14, 2, seed=seed)
    replay = build_replay(deployment, ReplayConfig(rounds=6, seed=seed * 7 + 1))
    workload = generate_subscriptions(
        deployment,
        replay.medians,
        SubscriptionWorkloadConfig(
            n_subscriptions=5, attrs_min=2, attrs_max=4, seed=seed
        ),
        spreads=replay.spreads,
    )
    return deployment, replay, workload


def _run_arena(deployment, replay, workload, reliability=None) -> Network:
    network = Network(
        deployment, Simulator(seed=deployment.seed), reliability=reliability
    )
    all_approaches()["naive"].populate(network)
    network.attach_all_sensors()
    network.run_to_quiescence()
    for placed in workload:
        network.register_subscription(placed.node_id, placed.subscription)
        network.run_to_quiescence()
    shifted = replay.shifted(REPLAY_START)
    node_of = {s.sensor_id: s.node_id for s in deployment.sensors}
    network.sim.schedule_timeline(
        (e.timestamp, lambda e=e: network.publish(node_of[e.sensor_id], e))
        for e in shifted
    )
    network.run_to_quiescence()
    return network


def _delivery_state(network: Network):
    return (
        {
            sub_id: set(network.delivery.delivered(sub_id))
            for sub_id in network.delivery.subscriptions()
        },
        dict(network.delivery.complex_deliveries),
    )


@given(seed=st.integers(min_value=0, max_value=100_000))
@_property_settings
def test_duplicated_deliveries_never_double_count(seed):
    """Re-delivering every replayed event to every subscriber host (the
    worst duplication an at-least-once wire could produce) changes
    nothing: no delivery is re-logged, no complex match re-counted."""
    deployment, replay, workload = _static_arena(seed)
    network = _run_arena(deployment, replay, workload)
    before = _delivery_state(network)
    for placed in workload:
        node = network.nodes[placed.node_id]
        origin = network.neighbors(placed.node_id)[0]
        for event in replay.shifted(REPLAY_START):
            node.receive(EventMessage(event, (event.sensor_id,)), origin)
    network.run_to_quiescence()
    assert _delivery_state(network) == before


def _soft_state_fingerprint(network: Network):
    """Routing + subscription knowledge per node (volatile event history
    is deliberately excluded: a crash legitimately forgets old events,
    which age out of the delta_t window anyway)."""
    return {
        node_id: (
            sorted(ad.sensor_id for ad in node.ads.all()),
            sorted(
                op_id
                for store in node.stores.values()
                for op_id in store._op_ids
            ),
        )
        for node_id, node in network.nodes.items()
    }


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    crash_pick=st.integers(min_value=0, max_value=1_000),
)
@_property_settings
def test_recovery_converges_to_the_no_fault_fixed_point(seed, crash_pick):
    """Crash any non-subscriber broker after setup, recover it, run one
    refresh round: routing and subscription state is indistinguishable
    from a network that never crashed (and also ran the round)."""
    deployment, replay, workload = _static_arena(seed)
    subscriber_hosts = {p.node_id for p in workload}
    cfg = ReliabilityConfig()
    crashed = _run_arena(deployment, replay, workload, reliability=cfg)
    candidates = sorted(set(crashed.nodes) - subscriber_hosts)
    victim = candidates[crash_pick % len(candidates)]
    crashed.crash_node(victim)
    crashed.recover_node(victim)
    crashed.run_to_quiescence()
    crashed.schedule_refresh([(crashed.sim.now + 1.0, 1)])
    crashed.run_to_quiescence()

    steady = _run_arena(deployment, replay, workload, reliability=cfg)
    steady.schedule_refresh([(steady.sim.now + 1.0, 1)])
    steady.run_to_quiescence()
    assert _soft_state_fingerprint(crashed) == _soft_state_fingerprint(steady)


class TestSoftStateExpiry:
    def test_remote_ads_expire_after_missed_rounds_and_return(self):
        network = Network(
            line_deployment(),
            Simulator(seed=0),
            reliability=ReliabilityConfig(expiry_rounds=2),
        )
        all_approaches()["naive"].populate(network)
        network.attach_all_sensors()
        network.run_to_quiescence()
        assert network.nodes["hub"].ads.get("c") is not None
        network.crash_node("s_c")
        t = network.sim.now
        network.schedule_refresh([(t + 10, 1), (t + 20, 2)])
        network.run_to_quiescence()
        # Two missed rounds are not yet an expiry (strict threshold).
        assert network.nodes["hub"].ads.get("c") is not None
        network.schedule_refresh([(network.sim.now + 10, 3)])
        network.run_to_quiescence()
        # The third round expires the silent sensor everywhere live...
        for node_id in ("hub", "s_a", "s_b", "u1", "u2"):
            assert network.nodes[node_id].ads.get("c") is None, node_id
        assert network.nodes["hub"].ads.get("a") is not None  # others live on
        # ...and recovery re-floods it through the normal re-join path.
        network.recover_node("s_c")
        network.run_to_quiescence()
        for node_id in ("hub", "s_a", "s_b", "u1", "u2"):
            assert network.nodes[node_id].ads.get("c") is not None, node_id


def _outage_factory(seed):
    return build_deployment(24, 3, seed=seed)


class TestOutageRecovery:
    def test_correlated_outage_recovers_to_full_recall(self):
        """The acceptance criterion: every sensor-hosting leaf broker in
        the deployment fails *together* for half a minute; with the
        reliability layer on, the run still measures recall 1.0 for all
        five approaches — the oracle fences exactly the readings the
        down hosts dropped, recovery re-floods local sensors, and the
        refresh round right after the window re-heals remote soft state
        before the next matchable reading arrives."""
        deployment = _outage_factory(0)
        leaves = sorted(
            n
            for n in {p.node_id for p in deployment.sensors}
            if deployment.graph.degree(n) == 1
        )
        assert leaves, "deployment lost its leaf sensor hosts?"
        scenario = Scenario(
            key="tiny-outage",
            title="correlated base-station outage",
            deployment_factory=_outage_factory,
            paper_subscription_counts=(60,),
            attrs_min=3,
            attrs_max=5,
            include_centralized=True,
            faults=FaultPlan(
                outages=(OutageWindow(tuple(leaves), 60.0, 89.0),)
            ),
            reliability=ReliabilityConfig(refresh_interval=30.0),
        )
        series = run_series(scenario, all_approaches(), scale=0.1)
        for key, runs in series.results.items():
            result = runs[-1]
            assert result.recall == 1.0, (key, result.recall)
            assert result.true_instances > 0, key
            assert result.refresh_load > 0, key
            if key != "centralized":
                # Flood traffic addressed to down brokers genuinely
                # died (centralized never targets the leaves: its star
                # only exchanges with the centre, so nothing it sends
                # crosses a down domain).
                assert result.dropped_messages > 0, key
