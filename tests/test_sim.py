"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_time_ordering(self):
        sim = Simulator()
        out = []
        sim.schedule(2.0, lambda: out.append("late"))
        sim.schedule(1.0, lambda: out.append("early"))
        sim.run()
        assert out == ["early", "late"]
        assert sim.now == 2.0

    def test_fifo_among_simultaneous(self):
        sim = Simulator()
        out = []
        for i in range(5):
            sim.at(1.0, lambda i=i: out.append(i))
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_priority_beats_fifo(self):
        sim = Simulator()
        out = []
        sim.at(1.0, lambda: out.append("normal"), priority=0)
        sim.at(1.0, lambda: out.append("urgent"), priority=-1)
        sim.run()
        assert out == ["urgent", "normal"]

    def test_nested_scheduling(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: out.append(sim.now)))
        sim.run()
        assert out == [2.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        out = []
        handle = sim.schedule(1.0, lambda: out.append("x"))
        handle.cancel()
        sim.run()
        assert out == [] and handle.cancelled
        assert sim.pending == 0

    def test_run_until(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, lambda: out.append(1))
        sim.schedule(10.0, lambda: out.append(10))
        sim.run(until=5.0)
        assert out == [1] and sim.now == 5.0
        sim.run()
        assert out == [1, 10]

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=10)

    def test_step(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, lambda: out.append(1))
        assert sim.step() and out == [1]
        assert not sim.step()

    def test_not_reentrant(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: sim.run())
        with pytest.raises(SimulationError):
            sim.run()


class TestProcesses:
    def test_generator_process(self):
        sim = Simulator()
        out = []

        def proc():
            out.append(("start", sim.now))
            yield 2.0
            out.append(("mid", sim.now))
            yield 3.0
            out.append(("end", sim.now))

        sim.process(proc())
        sim.run()
        assert out == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]

    def test_negative_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_drain(self):
        sim = Simulator()
        out = []
        sim.drain([lambda: out.append(1), lambda: out.append(2)])
        assert out == [1, 2]


class TestDeterminism:
    def test_named_rng_streams_independent_and_reproducible(self):
        a1 = Simulator(seed=7).rng("x").random(5).tolist()
        a2 = Simulator(seed=7).rng("x").random(5).tolist()
        b = Simulator(seed=7).rng("y").random(5).tolist()
        assert a1 == a2
        assert a1 != b

    def test_same_rng_instance_per_name(self):
        sim = Simulator(seed=1)
        assert sim.rng("s") is sim.rng("s")

    def test_processed_event_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 4


class TestRngStability:
    """The documented contract: equal seeds give equal runs — across
    *processes*, not just within one.  The stream-key derivation once
    used ``hash((root, stream))``, which varies with PYTHONHASHSEED."""

    _DRAW = (
        "import sys; sys.path.insert(0, {path!r}); "
        "from repro.sim import Simulator; "
        "print(Simulator(seed=7).rng('setfilter:n1').random(4).tolist())"
    )

    def _draw_in_subprocess(self, hashseed: str) -> str:
        import os
        import pathlib
        import subprocess
        import sys

        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        out = subprocess.run(
            [sys.executable, "-c", self._DRAW.format(path=src)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return out.stdout.strip()

    def test_rng_streams_stable_across_hash_randomization(self):
        draws = {self._draw_in_subprocess(seed) for seed in ("0", "1", "31337")}
        assert len(draws) == 1, (
            "rng stream keys must not depend on PYTHONHASHSEED; got "
            f"{draws}"
        )

    def test_rng_stream_matches_in_process_draw(self):
        from repro.sim import Simulator

        local = str(Simulator(seed=7).rng("setfilter:n1").random(4).tolist())
        assert self._draw_in_subprocess("42") == local
