"""Kernel input validation and the agenda-budget diagnostics.

The simulator rejects the inputs that used to corrupt runs silently —
NaN times, negative delays, a reversed clock — and its budget guard
raises a distinguishable :class:`AgendaBudgetExceeded` carrying enough
agenda introspection (:meth:`Simulator.agenda_summary`) for the
network layer to name a livelock.
"""

from __future__ import annotations

import math

import pytest

from repro.sim import AgendaBudgetExceeded, SimulationError, Simulator


class TestSchedulingValidation:
    def test_at_rejects_nan_time(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="NaN"):
            sim.at(math.nan, lambda: None)

    def test_schedule_rejects_nan_delay(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="NaN"):
            sim.schedule(math.nan, lambda: None)

    def test_schedule_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="negative delay"):
            sim.schedule(-0.5, lambda: None)

    def test_at_rejects_past_time(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="now is 5"):
            sim.at(4.0, lambda: None)

    def test_valid_inputs_still_schedule(self):
        sim = Simulator()
        ran = []
        sim.schedule(0.0, lambda: ran.append("zero-delay"))
        sim.at(1.5, lambda: ran.append("absolute"))
        sim.run()
        assert ran == ["zero-delay", "absolute"]


class TestRunValidation:
    def test_run_until_nan_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="NaN"):
            sim.run(until=math.nan)

    def test_run_until_in_the_past_raises(self):
        """The silent no-op this replaces hid reversed-clock bugs: a
        harness computing ``until`` from a mis-shifted replay simply ran
        nothing and reported empty metrics."""
        sim = Simulator()
        sim.at(10.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0
        with pytest.raises(SimulationError, match="monotone"):
            sim.run(until=9.0)

    def test_run_until_now_is_allowed(self):
        sim = Simulator()
        sim.run(until=0.0)  # vacuous but monotone
        assert sim.now == 0.0


class TestAgendaBudget:
    @staticmethod
    def _ticker(sim: Simulator):
        def tick():
            sim.schedule(1.0, tick)

        return tick

    def test_budget_exhaustion_raises_dedicated_error(self):
        sim = Simulator()
        sim.schedule(0.0, self._ticker(sim))
        with pytest.raises(AgendaBudgetExceeded, match="max_events=25"):
            sim.run(max_events=25)

    def test_budget_error_is_a_simulation_error(self):
        """Existing handlers catching SimulationError keep working."""
        assert issubclass(AgendaBudgetExceeded, SimulationError)

    def test_agenda_summary_names_the_pending_loop(self):
        sim = Simulator()
        sim.schedule(0.0, self._ticker(sim))
        with pytest.raises(AgendaBudgetExceeded):
            sim.run(max_events=10)
        summary = sim.agenda_summary()
        assert summary, "the runaway loop left nothing pending?"
        names = [name for name, _ in summary]
        assert any("tick" in name for name in names)

    def test_agenda_summary_skips_cancelled_and_honours_n(self):
        sim = Simulator()
        handles = [sim.at(float(i + 1), lambda: None) for i in range(4)]
        handles[0].cancel()
        sim.at(9.0, self._ticker(sim))
        summary = sim.agenda_summary(n=1)
        assert len(summary) == 1
        name, count = summary[0]
        assert count == 3  # the three surviving lambdas dominate
