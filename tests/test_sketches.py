"""Property suite for the sketch summaries (q-digest, multiresolution).

The algebra the push trees rely on, stated as plain equality on the
frozen canonical form: merge is associative and commutative, so
summaries may combine along arbitrary tree paths in arbitrary order;
compression is idempotent and preserves the counted multiset; the
certified bracket always contains the contract truth with half-width
at most ``error_bound <= eps * n``; and serialization is canonical —
pickle round-trips to an equal object and the bytes are independent of
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import pickle
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sketches import MultiResolution, QDigest, SketchConfig
from repro.sketches.qdigest import merge_all

LO, HI = 0.0, 1024.0

values_st = st.lists(
    st.floats(LO, HI, allow_nan=False), min_size=0, max_size=80
)
small_k = st.integers(1, 64)
levels_st = st.integers(1, 10)


def digest_of(values, k=8, levels=6):
    return QDigest.from_values(values, k=k, levels=levels, lo=LO, hi=HI)


# ---------------------------------------------------------------------------
# merge algebra
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(a=values_st, b=values_st, c=values_st, k=small_k, levels=levels_st)
def test_merge_associative_and_commutative(a, b, c, k, levels):
    da, db, dc = (
        QDigest.from_values(v, k=k, levels=levels, lo=LO, hi=HI)
        for v in (a, b, c)
    )
    assert da.merged(db) == db.merged(da)
    assert da.merged(db).merged(dc) == da.merged(db.merged(dc))
    assert merge_all([da, db, dc]).n == len(a) + len(b) + len(c)


@settings(max_examples=40, deadline=None)
@given(a=values_st, b=values_st)
def test_merge_preserves_total_count_and_invariant(a, b):
    merged = digest_of(a).merged(digest_of(b)).compressed()
    assert merged.n == len(a) + len(b)
    merged.check_invariant()


# ---------------------------------------------------------------------------
# compression
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(values=values_st, k=small_k, levels=levels_st)
def test_compression_idempotent_and_invariant(values, k, levels):
    digest = QDigest(k, levels, LO, HI).extended(values)
    once = digest.compressed()
    assert once.compressed() == once
    assert once.n == digest.n
    once.check_invariant()


def test_compression_bounds_size():
    # A long uniform stream: the digest stays O(k * levels) buckets
    # while the raw stream keeps growing.
    values = [(i * 37) % 1024 + 0.5 for i in range(4000)]
    digest = digest_of(values, k=8, levels=10)
    assert digest.n == 4000
    assert digest.size < 8 * 10 * 3
    digest.check_invariant()


# ---------------------------------------------------------------------------
# error contract
# ---------------------------------------------------------------------------
def quantized_truth(digest, values, vlo, vhi):
    c_lo, c_hi = digest.query_cells(vlo, vhi)
    return sum(1 for v in values if c_lo <= digest.cell(v) <= c_hi)


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    values=values_st,
    k=small_k,
    levels=levels_st,
    qlo=st.floats(LO, HI, allow_nan=False),
    qhi=st.floats(LO, HI, allow_nan=False),
)
def test_range_bounds_contain_quantized_truth(values, k, levels, qlo, qhi):
    if qhi < qlo:
        qlo, qhi = qhi, qlo
    digest = QDigest.from_values(values, k=k, levels=levels, lo=LO, hi=HI)
    lower, upper = digest.range_count_bounds(qlo, qhi)
    truth = quantized_truth(digest, values, qlo, qhi)
    assert lower <= truth <= upper
    assert upper - lower <= 2 * digest.error_bound
    assert abs(digest.estimate_range(qlo, qhi) - truth) <= digest.error_bound
    assert digest.error_bound <= digest.eps * max(digest.n, 1)


@pytest.mark.parametrize(
    "stream",
    [
        [500.0] * 300,  # every value in one cell
        [float(i % 2) * 1023.0 for i in range(300)],  # two extreme cells
        sorted((i * 7.3) % 1024 for i in range(300)),  # sorted sweep
        [2.0 ** (i % 10) for i in range(300)],  # exponential clusters
    ],
    ids=["constant", "bimodal", "sorted", "exponential"],
)
def test_adversarial_streams_respect_bound(stream):
    digest = digest_of(stream, k=8, levels=10)
    digest.check_invariant()
    for qlo, qhi in [(0.0, 1024.0), (0.0, 1.0), (500.0, 500.0), (100.0, 900.0)]:
        lower, upper = digest.range_count_bounds(qlo, qhi)
        truth = quantized_truth(digest, stream, qlo, qhi)
        assert lower <= truth <= upper
        assert abs(digest.estimate_range(qlo, qhi) - truth) <= digest.error_bound


@settings(max_examples=40, deadline=None)
@given(values=values_st, probe=st.floats(LO, HI, allow_nan=False))
def test_rank_bounds_bracket_quantized_rank(values, probe):
    digest = digest_of(values)
    lower, upper = digest.rank_bounds(probe)
    rank = sum(1 for v in values if digest.cell(v) <= digest.cell(probe))
    assert lower <= rank <= upper


# ---------------------------------------------------------------------------
# multiresolution estimator
# ---------------------------------------------------------------------------
def mr_of(values, resolutions=(3, 5, 7)):
    return MultiResolution(resolutions, LO, HI).extended(values)


@settings(max_examples=40, deadline=None)
@given(a=values_st, b=values_st, c=values_st)
def test_multires_merge_algebra(a, b, c):
    ma, mb, mc = mr_of(a), mr_of(b), mr_of(c)
    assert ma.merged(mb) == mb.merged(ma)
    assert ma.merged(mb).merged(mc) == ma.merged(mb.merged(mc))
    assert ma.compressed() is ma  # fixed-size stack: compression no-op


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    values=values_st,
    qlo=st.floats(LO, HI, allow_nan=False),
    qhi=st.floats(LO, HI, allow_nan=False),
)
def test_multires_bounds_contain_raw_truth(values, qlo, qhi):
    if qhi < qlo:
        qlo, qhi = qhi, qlo
    mr = mr_of(values)
    lower, upper = mr.range_count_bounds(qlo, qhi)
    truth = sum(1 for v in values if qlo <= v <= qhi)
    assert lower <= truth <= upper
    assert abs(mr.estimate_range(qlo, qhi) - truth) <= mr.error_bound


def test_multires_validation():
    with pytest.raises(ValueError):
        MultiResolution((), LO, HI)
    with pytest.raises(ValueError):
        MultiResolution((5, 3), LO, HI)
    with pytest.raises(ValueError):
        MultiResolution((3, 5), 10.0, 10.0)
    with pytest.raises(ValueError):
        mr_of([]).merged(MultiResolution((2, 4), LO, HI))


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(values=values_st)
def test_pickle_round_trip_equality(values):
    digest = digest_of(values)
    assert pickle.loads(pickle.dumps(digest)) == digest
    mr = mr_of(values)
    assert pickle.loads(pickle.dumps(mr)) == mr


_HASH_PROBE = """
import hashlib, pickle, sys
sys.path.insert(0, {src!r})
from repro.sketches import MultiResolution, QDigest
values = [(i * 37.0) % 1024 + (i % 7) * 0.1 for i in range(500)]
d = QDigest.from_values(values, k=8, levels=10, lo=0.0, hi=1024.0)
m = MultiResolution((3, 5, 7), 0.0, 1024.0).extended(values)
print(hashlib.sha256(pickle.dumps((d, m))).hexdigest())
"""


def test_serialization_hashseed_independent(tmp_path):
    """The pickled bytes are identical across PYTHONHASHSEED values.

    Summaries travel inside messages and memo caches; a digest whose
    canonical form depended on set/dict iteration order would break
    the sharded runner's bit-identity.  Two fresh interpreters with
    different hash seeds must produce byte-identical pickles.
    """
    import repro

    src = str(next(p for p in sys.path if (repro.__file__ or "").startswith(p)))
    digests = []
    for seed in ("0", "424242"):
        out = subprocess.run(
            [sys.executable, "-c", _HASH_PROBE.format(src=src)],
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            check=True,
        )
        digests.append(out.stdout.strip())
    assert digests[0] == digests[1]


# ---------------------------------------------------------------------------
# construction validation & config
# ---------------------------------------------------------------------------
def test_qdigest_validation():
    with pytest.raises(ValueError):
        QDigest(0, 6, LO, HI)
    with pytest.raises(ValueError):
        QDigest(8, 0, LO, HI)
    with pytest.raises(ValueError):
        QDigest(8, 40, LO, HI)
    with pytest.raises(ValueError):
        QDigest(8, 6, 5.0, 5.0)
    with pytest.raises(ValueError):
        digest_of([]).merged(QDigest(9, 6, LO, HI))
    with pytest.raises(ValueError):
        merge_all([])


def test_sketch_config_validation():
    with pytest.raises(ValueError):
        SketchConfig(k=0)
    with pytest.raises(ValueError):
        SketchConfig(push_interval=0.0)
    with pytest.raises(ValueError):
        SketchConfig(buckets_per_unit=0)
    with pytest.raises(ValueError):
        SketchConfig(estimator="exactly")
    cfg = SketchConfig(estimator="multires")
    assert isinstance(cfg.empty_summary("t", LO, HI), MultiResolution)
    assert isinstance(SketchConfig().empty_summary("t", LO, HI), QDigest)
    # default domains: the five SensorScope attributes
    assert len(SketchConfig().domain_map()) == 5
