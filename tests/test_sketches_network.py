"""The approximate answer lane end to end on the network layer.

* certified answers: the lane's ``[lower, upper]`` bracket contains
  the (quantized) truth, for digests merged across a real push tree;
* suppression by omission: sketch-eligible subscriptions never enter
  the exact pipeline, so the only traffic is lane traffic;
* churn fences: a departed sensor's contributions age out of broker
  digests exactly like ``EventStore.fence_sensor`` — stragglers at or
  before the fence refused, summary restarted from empty on rejoin;
* gates: every incompatible combination is rejected at construction,
  never discovered mid-run;
* the null fence: ``answer_mode="exact"`` (the default) is
  bit-identical to a network built without the argument, for every
  approach and both matching engines.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api.session import Session
from repro.baselines import (
    centralized_approach,
    multijoin_approach,
    naive_approach,
    operator_placement_approach,
)
from repro.core import filter_split_forward_approach
from repro.model import IdentifiedSubscription
from repro.model.intervals import Interval
from repro.model.locations import RectRegion
from repro.model.subscriptions import AbstractSubscription
from repro.network.faults import FaultPlan, LinkFault
from repro.network.network import Network
from repro.network.reliability import ReliabilityConfig
from repro.sim import Simulator
from repro.sketches import QDigest, SketchConfig
from repro.workload.program import WorkloadProgram
from repro.workload.scenarios import SKETCHES
from repro.workload.subscriptions import SubscriptionWorkloadConfig

from deployments import line_deployment, publish

APPROACHES = {
    "naive": naive_approach,
    "operator_placement": operator_placement_approach,
    "multijoin": multijoin_approach,
    "fsf": filter_split_forward_approach,
    "centralized": centralized_approach,
}

CFG = SketchConfig(
    k=8, levels=6, push_interval=50.0, domains=(("t", -1000.0, 1000.0),)
)
ALL_SENSORS = RectRegion(Interval(-1.0, 3.0), Interval(-1.0, 1.0))


def approx_network(cfg: SketchConfig = CFG) -> Network:
    network = Network(
        line_deployment(),
        Simulator(seed=0),
        delta_t=5.0,
        answer_mode="approximate",
        sketch=cfg,
    )
    naive_approach().populate(network)
    network.attach_all_sensors()
    network.run_to_quiescence()
    return network


def range_sub(sub_id: str, lo: float, hi: float) -> AbstractSubscription:
    """A single-slot range filter over every line-deployment sensor."""
    return AbstractSubscription.from_ranges(
        sub_id, {"t": (lo, hi)}, ALL_SENSORS, delta_t=5.0
    )


# ---------------------------------------------------------------------------
# certified answers
# ---------------------------------------------------------------------------
def test_merged_answer_brackets_quantized_truth():
    network = approx_network()
    network.register_subscription("u2", range_sub("q0", 0.0, 8.0))
    network.run_to_quiescence()
    t0 = network.sim.now + 1.0
    values = [
        ("a", 1.0), ("a", 4.0), ("a", 100.0),
        ("b", 7.5), ("b", -3.0), ("b", 2.0),
        ("c", 8.0), ("c", 0.0), ("c", 900.0),
    ]
    for i, (sensor, value) in enumerate(values):
        publish(network, sensor, value, ts=t0 + i, seq=i)
    network.schedule_sketch_rounds([(t0 + 100.0, 1)])
    network.run_to_quiescence()

    answer = network.sketches.answer_for("q0")
    assert answer is not None
    assert answer.sensors == frozenset({"a", "b", "c"})
    assert answer.n == len(values)
    summary = answer.summary
    c_lo, c_hi = summary.query_cells(0.0, 8.0)
    truth = sum(
        1 for _, v in values if c_lo <= summary.cell(v) <= c_hi
    )
    assert answer.lower <= truth <= answer.upper
    assert abs(answer.estimate - truth) <= answer.error_bound
    assert answer.eps == summary.levels / summary.k


def test_answers_accumulate_across_rounds():
    network = approx_network()
    network.register_subscription("u2", range_sub("q0", 0.0, 10.0))
    network.run_to_quiescence()
    t0 = network.sim.now + 1.0
    publish(network, "a", 5.0, ts=t0, seq=0)
    network.schedule_sketch_rounds([(t0 + 10.0, 1)])
    network.run_to_quiescence()
    first = network.sketches.answer_for("q0")
    assert first.n == 1 and first.round_no == 1

    t1 = network.sim.now + 1.0
    publish(network, "b", 6.0, ts=t1, seq=1)
    publish(network, "c", 7.0, ts=t1 + 1.0, seq=2)
    network.schedule_sketch_rounds([(t1 + 10.0, 2)])
    network.run_to_quiescence()
    second = network.sketches.answer_for("q0")
    # Summaries are cumulative; the new round replaces the answer.
    assert second.n == 3 and second.round_no == 2
    assert second.lower <= 3 <= second.upper


def test_shared_group_single_tree():
    """Same (home, attribute, sensor set) => one push tree, two answers."""
    network = approx_network()
    network.register_subscription("u2", range_sub("q0", 0.0, 8.0))
    network.run_to_quiescence()
    setup_once = network.meter.snapshot().sketch_units
    network.register_subscription("u2", range_sub("q1", 2.0, 5.0))
    network.run_to_quiescence()
    # The second subscription joined the existing group: no new flood.
    assert network.meter.snapshot().sketch_units == setup_once
    t0 = network.sim.now + 1.0
    publish(network, "a", 3.0, ts=t0, seq=0)
    network.schedule_sketch_rounds([(t0 + 10.0, 1)])
    network.run_to_quiescence()
    answers = network.sketches.query_answers()
    assert set(answers) == {"q0", "q1"}
    assert answers["q0"].group_id == answers["q1"].group_id


# ---------------------------------------------------------------------------
# suppression by omission
# ---------------------------------------------------------------------------
def test_eligible_subscription_bypasses_exact_pipeline():
    network = approx_network()
    network.register_subscription("u2", range_sub("q0", 0.0, 8.0))
    network.run_to_quiescence()
    home = network.nodes["u2"]
    assert home.local_subscriptions == []
    # No operator flood anywhere: only lane traffic on the wire.
    snap = network.meter.snapshot()
    assert snap.sketch_units == snap.subscription_units + snap.event_units
    t0 = network.sim.now + 1.0
    for i, sensor in enumerate(("a", "b", "c")):
        publish(network, sensor, 4.0, ts=t0 + i, seq=i)
    network.schedule_sketch_rounds([(t0 + 50.0, 1)])
    network.run_to_quiescence()
    # Raw readings were never forwarded; nothing was delivered exactly.
    snap = network.meter.snapshot()
    assert snap.sketch_units == snap.subscription_units + snap.event_units
    assert network.delivery.delivered("q0") == {}


def test_ineligible_subscription_keeps_exact_pipeline():
    """Multi-slot queries stay exact even in approximate mode."""
    network = approx_network()
    sub = IdentifiedSubscription.from_ranges(
        "q0", {"a": ("t", 0.0, 8.0), "b": ("t", 0.0, 8.0)}, delta_t=5.0
    )
    network.register_subscription("u2", sub)
    network.run_to_quiescence()
    assert network.nodes["u2"].local_subscriptions
    assert network.sketches.answer_for("q0") is None


def test_push_units_scale_with_digest_size():
    cfg = SketchConfig(
        k=64, levels=10, push_interval=50.0, buckets_per_unit=4,
        domains=(("t", -1000.0, 1000.0),),
    )
    network = approx_network(cfg)
    network.register_subscription("u2", range_sub("q0", -1000.0, 1000.0))
    network.run_to_quiescence()
    before = network.meter.snapshot()
    t0 = network.sim.now + 1.0
    for i in range(60):
        publish(network, "c", float((i * 31) % 997) - 400.0, ts=t0 + i * 0.1, seq=i)
    network.schedule_sketch_rounds([(t0 + 30.0, 1)])
    network.run_to_quiescence()
    pushed = network.meter.snapshot().minus(before)
    # 60 distinct-ish readings from the farthest sensor: the digest
    # crosses 5 hops but bills a fraction of the 60 * 5 raw units.
    assert 0 < pushed.event_units < 60 * 5
    assert pushed.event_units == pushed.sketch_units


# ---------------------------------------------------------------------------
# churn fences
# ---------------------------------------------------------------------------
def test_departed_sensor_ages_out_of_answers():
    network = approx_network()
    network.register_subscription("u2", range_sub("q0", 0.0, 10.0))
    network.run_to_quiescence()
    t0 = network.sim.now + 1.0
    publish(network, "a", 5.0, ts=t0, seq=0)
    publish(network, "b", 6.0, ts=t0 + 1.0, seq=1)
    network.schedule_sketch_rounds([(t0 + 10.0, 1)])
    network.run_to_quiescence()
    assert network.sketches.answer_for("q0").n == 2

    # Sensor a departs: its summary drops at the hosting broker and the
    # next round's merged answer no longer counts it.
    network.sim.at(
        network.sim.now + 1.0, lambda: network.detach_sensor("s_a", "a")
    )
    t1 = network.sim.now + 5.0
    network.schedule_sketch_rounds([(t1 + 10.0, 2)])
    network.run_to_quiescence()
    answer = network.sketches.answer_for("q0")
    assert answer.round_no == 2
    assert answer.n == 1  # only b's reading survives


def test_fence_refuses_stragglers_until_rejoin():
    """The lane mirrors ``EventStore.fence_sensor`` semantics."""
    lane = approx_network().sketches
    event = lambda ts: type(  # noqa: E731 - tiny stub
        "E", (), {"sensor_id": "a", "attribute": "t", "value": 1.0, "timestamp": ts}
    )()
    lane.observe_local("s_a", event(10.0))
    lane.fence_sensor("s_a", "a", now=20.0)
    assert lane._hosted.get("s_a", {}).get("a") is None
    # Stragglers stamped at or before the fence are refused...
    lane.observe_local("s_a", event(20.0))
    lane.observe_local("s_a", event(15.0))
    assert lane._hosted.get("s_a", {}).get("a") is None
    # ...and the fence rises monotonically (a stale lower fence loses).
    lane.fence_sensor("s_a", "a", now=5.0)
    lane.observe_local("s_a", event(18.0))
    assert lane._hosted.get("s_a", {}).get("a") is None
    # Rejoin: the summary restarts from empty.
    lane.unfence_sensor("s_a", "a")
    lane.observe_local("s_a", event(25.0))
    assert lane._hosted["s_a"]["a"].folded().n == 1


def test_rejoined_sensor_contributes_fresh_readings():
    network = approx_network()
    network.register_subscription("u2", range_sub("q0", 0.0, 10.0))
    network.run_to_quiescence()
    t0 = network.sim.now + 1.0
    publish(network, "a", 5.0, ts=t0, seq=0)
    placement = network.deployment.sensor_by_id("a")
    network.sim.at(t0 + 2.0, lambda: network.detach_sensor("s_a", "a"))
    network.sim.at(t0 + 4.0, lambda: network.attach_sensor("s_a", placement))
    publish(network, "a", 6.0, ts=t0 + 6.0, seq=1)
    network.schedule_sketch_rounds([(t0 + 20.0, 1)])
    network.run_to_quiescence()
    answer = network.sketches.answer_for("q0")
    # The pre-departure reading is gone; the post-rejoin one counts.
    assert answer.n == 1


# ---------------------------------------------------------------------------
# gates
# ---------------------------------------------------------------------------
def test_construction_gates():
    deployment = line_deployment()
    with pytest.raises(ValueError, match="answer_mode"):
        Network(deployment, Simulator(seed=0), answer_mode="fuzzy")
    with pytest.raises(ValueError, match="approximate"):
        Network(deployment, Simulator(seed=0), sketch=CFG)
    with pytest.raises(ValueError, match="unreliable"):
        Network(
            deployment,
            Simulator(seed=0),
            answer_mode="approximate",
            faults=FaultPlan(default=LinkFault(drop=0.1), seed=1),
        )
    with pytest.raises(ValueError, match="unreliable"):
        Network(
            deployment,
            Simulator(seed=0),
            answer_mode="approximate",
            reliability=ReliabilityConfig(),
        )


def test_plan_and_round_gates():
    network = approx_network()
    with pytest.raises(ValueError, match="plan"):
        network.register_subscription(
            "u2", range_sub("q0", 0.0, 8.0), plan=object()
        )
    exact = Network(line_deployment(), Simulator(seed=0))
    with pytest.raises(ValueError, match="approximate"):
        exact.schedule_sketch_rounds([(10.0, 1)])


def test_session_rejects_unsupported_approach():
    with pytest.raises(ValueError, match="centralized"):
        Session.create(
            approach="centralized",
            deployment=line_deployment(),
            answer_mode="approximate",
        )


def test_program_gates():
    subs = SubscriptionWorkloadConfig(n_subscriptions=4)
    with pytest.raises(ValueError, match="answer_mode"):
        WorkloadProgram(subscriptions=subs, answer_mode="fuzzy")
    with pytest.raises(ValueError, match="approximate"):
        WorkloadProgram(subscriptions=subs, sketch=SketchConfig())
    with pytest.raises(ValueError, match="lossless"):
        WorkloadProgram(
            subscriptions=subs,
            answer_mode="approximate",
            faults=FaultPlan(default=LinkFault(drop=0.1), seed=1),
        )
    with pytest.raises(ValueError, match="lossless"):
        WorkloadProgram(
            subscriptions=subs,
            answer_mode="approximate",
            reliability=ReliabilityConfig(),
        )
    with pytest.raises(ValueError, match="placement"):
        WorkloadProgram(
            subscriptions=subs,
            answer_mode="approximate",
            placement="compiled",
        )


def test_sketches_scenario_is_registered():
    assert SKETCHES.answer_mode == "exact"  # the frontier lane
    program = SKETCHES.program(4)
    assert program.answer_mode == "exact" and program.sketch is None


# ---------------------------------------------------------------------------
# the null fence: exact mode is the legacy path, bit for bit
# ---------------------------------------------------------------------------
def _run_exact(approach_key, matching, raw_events, with_kwarg):
    network = Network(
        line_deployment(),
        Simulator(seed=0),
        delta_t=5.0,
        matching=matching,
        **({"answer_mode": "exact"} if with_kwarg else {}),
    )
    APPROACHES[approach_key]().populate(network)
    network.attach_all_sensors()
    network.run_to_quiescence()
    sub = IdentifiedSubscription.from_ranges(
        "q0",
        {s: ("t", 0.0, 8.0) for s in ("a", "b", "c")},
        delta_t=5.0,
    )
    network.register_subscription("u2", sub)
    network.run_to_quiescence()
    t0 = network.sim.now + 10.0
    for i, (sensor, value, dt) in enumerate(raw_events):
        publish(network, sensor, value, ts=t0 + dt, seq=i)
    network.run_to_quiescence()
    assert network.sketches is None
    return (
        network.meter.snapshot(),
        sorted(network.delivery.delivered("q0")),
    )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    approach_key=st.sampled_from(sorted(APPROACHES)),
    matching=st.sampled_from(["incremental", "columnar"]),
    raw_events=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.floats(0, 12, allow_nan=False),
            st.floats(0, 30, allow_nan=False),
        ),
        max_size=8,
    ),
)
def test_exact_mode_is_the_legacy_path(approach_key, matching, raw_events):
    """``answer_mode="exact"`` must be byte-identical to omitting it.

    Same traffic snapshot, same deliveries, for every approach and
    both matching engines — the machine check that the sketch
    subsystem is invisible until approximate mode is requested.
    """
    legacy = _run_exact(approach_key, matching, raw_events, False)
    fenced = _run_exact(approach_key, matching, raw_events, True)
    assert legacy == fenced


# ---------------------------------------------------------------------------
# the session facade
# ---------------------------------------------------------------------------
def test_session_approx_answers():
    exact = Session.create(approach="naive", deployment=line_deployment())
    assert exact.approx_answers() == {}

    session = Session.create(
        approach="naive",
        deployment=line_deployment(),
        answer_mode="approximate",
        sketch=CFG,
    )
    session.network.register_subscription("u2", range_sub("q0", 0.0, 8.0))
    session.network.run_to_quiescence()
    t0 = session.network.sim.now + 1.0
    publish(session.network, "a", 4.0, ts=t0, seq=0)
    session.network.schedule_sketch_rounds([(t0 + 10.0, 1)])
    session.drain()
    answers = session.approx_answers()
    assert set(answers) == {"q0"}
    assert answers["q0"].lower <= 1 <= answers["q0"].upper
    assert isinstance(answers["q0"].summary, QDigest)
