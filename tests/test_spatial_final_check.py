"""Grid-routed user-node final check == reference scan.

The recall metric (and ``QueryHandle.matches``) replays the user node's
final local check over delivered events; its ``delta_l`` phase now runs
through :func:`repro.matching.spatial.grid_instance_exists` instead of
the reference's all-pairs distance filter.  These tests machine-check
the two decisions identical on randomized abstract workloads — windows
dense and sparse, delta_l from "nothing correlates" to unbounded — and
pin the metric end-to-end.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Query, Session
from repro.matching.spatial import grid_instance_exists
from repro.metrics.oracle import EventIndex
from repro.metrics.recall import measure_recall
from repro.model.events import SimpleEvent
from repro.model.intervals import Interval
from repro.model.locations import Location, RectRegion
from repro.model.matching import instance_exists
from repro.model.operators import CorrelationOperator, Slot


def random_operator(rng, n_slots, n_sensors_per_slot, delta_l):
    slots = []
    for i in range(n_slots):
        sensors = frozenset(
            f"a{i}_s{j}" for j in range(n_sensors_per_slot)
        )
        slots.append(Slot(f"attr{i}", f"attr{i}", Interval(0.0, 100.0), sensors))
    return CorrelationOperator("q", "user", slots, delta_t=5.0, delta_l=delta_l)


def random_events(rng, operator, n_events, area, t_span):
    events = []
    seq = 0
    all_sensors = sorted(operator.sensors)
    attr_of = {
        sensor: slot.attribute
        for slot in operator.slots
        for sensor in slot.sensors
    }
    for _ in range(n_events):
        sensor = all_sensors[int(rng.integers(len(all_sensors)))]
        events.append(
            SimpleEvent(
                sensor,
                attr_of[sensor],
                Location(
                    float(rng.uniform(0, area)), float(rng.uniform(0, area))
                ),
                float(rng.uniform(-10.0, 110.0)),  # some miss the filter
                timestamp=float(rng.uniform(0.0, t_span)),
                seq=seq,
            )
        )
        seq += 1
    return events


@pytest.mark.parametrize("case", range(24))
def test_grid_decision_equals_reference(case):
    """Every candidate trigger decides identically under grid & scan."""
    rng = np.random.default_rng(case * 101 + 7)
    n_slots = int(rng.integers(2, 5))
    delta_l = float(rng.choice([3.0, 8.0, 25.0, math.inf]))
    operator = random_operator(rng, n_slots, int(rng.integers(1, 4)), delta_l)
    events = random_events(
        rng, operator, n_events=int(rng.integers(20, 120)), area=30.0, t_span=40.0
    )
    provider = EventIndex(events)
    decided = 0
    for trigger in events:
        if operator.slot_for_event(trigger) is None:
            continue
        reference = instance_exists(operator, provider, trigger)
        grid = grid_instance_exists(operator, provider, trigger)
        assert grid == reference, (case, trigger)
        decided += 1
    assert decided > 0, "case produced no candidate triggers"


def test_grid_handles_unstored_trigger():
    """Like the reference, the trigger need not be stored itself."""
    rng = np.random.default_rng(5)
    operator = random_operator(rng, 2, 1, delta_l=5.0)
    events = random_events(rng, operator, 30, area=8.0, t_span=20.0)
    provider = EventIndex(events)
    sensor = sorted(operator.sensors)[0]
    attribute = operator.slots[0].attribute
    phantom = SimpleEvent(
        sensor, attribute, Location(4.0, 4.0), 50.0, timestamp=10.0, seq=999
    )
    assert grid_instance_exists(operator, provider, phantom) == instance_exists(
        operator, provider, phantom
    )


def test_recall_metric_end_to_end_on_abstract_workload():
    """measure_recall (grid-routed) equals a reference-scan recount."""
    session = Session.create(approach="fsf", nodes=30, groups=4, seed=3)
    region = RectRegion(Interval(-1e6, 1e6), Interval(-1e6, 1e6))
    handles = []
    for i, delta_l in enumerate((5.0, 60.0, math.inf)):
        query = (
            Query()
            .named(f"abs{i}")
            .where("wind_speed", 0.0, 50.0)
            .where("relative_humidity", 0.0, 100.0)
            .within(6.0)
        )
        if math.isfinite(delta_l):
            query = query.near(region, delta_l)
        handles.append(session.submit(query))
    rng = np.random.default_rng(17)
    events = []
    t0 = session.now + 50.0
    for p in session.deployment.sensors:
        if p.attribute.name not in ("wind_speed", "relative_humidity"):
            continue
        for k in range(6):
            events.append(
                session.ingest(
                    p.sensor_id,
                    float(rng.uniform(0.0, 60.0)),
                    timestamp=t0 + float(rng.uniform(0.0, 30.0)),
                    seq=k,
                )
            )
    session.drain()
    truths = session.truth(events)
    report = measure_recall(truths, session.delivery)

    # Recount with the reference scan in place of the grid.
    delivered_instances = 0
    for sub_id, truth in truths.items():
        delivered = session.delivery.delivered(sub_id)
        view = session.delivery.view(sub_id)
        for trigger_key in truth.triggers:
            trigger = delivered.get(trigger_key)
            if trigger is not None and instance_exists(
                truth.operator, view, trigger
            ):
                delivered_instances += 1
    assert report.delivered_instances == delivered_instances
    assert report.true_instances == sum(t.n_instances for t in truths.values())
    assert report.true_instances > 0
    # The session saw real spatial filtering: the tight query delivers a
    # strict subset of the unbounded one's instances.
    assert truths["abs0"].n_instances <= truths["abs2"].n_instances
