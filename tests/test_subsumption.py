"""Tests for pair-wise, exact and probabilistic set subsumption."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model import IdentifiedSubscription, Interval, operator_from_identified
from repro.subsumption import (
    ProbabilisticSetFilter,
    boxes_cover,
    find_cover,
    is_pairwise_covered,
    reduce_pairwise,
    required_samples,
    uncovered_probe,
)
from repro.subsumption.exact import ExactCoverTooLarge


def op(sub_id, ranges, delta_t=5.0, subscriber="n"):
    return operator_from_identified(
        IdentifiedSubscription.from_ranges(
            sub_id, {k: ("t", lo, hi) for k, (lo, hi) in ranges.items()}, delta_t
        ),
        subscriber,
    )


WIDE = op("wide", {"a": (0, 100), "b": (0, 100)})
NARROW = op("narrow", {"a": (10, 20), "b": (10, 20)})
OTHER = op("other", {"a": (10, 20), "c": (10, 20)})


class TestPairwise:
    def test_find_cover_returns_first(self):
        twin = op("twin", {"a": (0, 100), "b": (0, 100)})
        assert find_cover(NARROW, [twin, WIDE]) is twin

    def test_no_cover(self):
        assert find_cover(WIDE, [NARROW]) is None
        assert not is_pairwise_covered(WIDE, [NARROW, OTHER])

    def test_signature_mismatch_never_covers(self):
        assert find_cover(OTHER, [WIDE]) is None

    def test_reduce_pairwise_arrival_order(self):
        kept = reduce_pairwise([NARROW, WIDE])
        assert kept == [NARROW, WIDE], "earlier narrow is not retro-filtered"
        kept = reduce_pairwise([WIDE, NARROW])
        assert kept == [WIDE]


class TestExactCover:
    def test_single_box(self):
        t = (Interval(0, 10), Interval(0, 10))
        assert boxes_cover(t, [(Interval(-1, 11), Interval(-1, 11))])

    def test_two_half_boxes(self):
        t = (Interval(0, 10),)
        assert boxes_cover(t, [(Interval(0, 5),), (Interval(5, 10),)])

    def test_gap(self):
        t = (Interval(0, 10),)
        assert not boxes_cover(t, [(Interval(0, 4),), (Interval(6, 10),)])
        witness = uncovered_probe(t, [(Interval(0, 4),), (Interval(6, 10),)])
        assert witness is not None and 4 < witness[0] < 6

    def test_cross_2d_union(self):
        # Two overlapping rectangles jointly (but not singly) covering.
        t = (Interval(0, 10), Interval(0, 10))
        cover = [
            (Interval(0, 10), Interval(0, 6)),
            (Interval(0, 10), Interval(5, 10)),
        ]
        assert boxes_cover(t, cover)

    def test_l_shape_leaves_corner(self):
        t = (Interval(0, 10), Interval(0, 10))
        cover = [
            (Interval(0, 10), Interval(0, 5)),
            (Interval(0, 5), Interval(0, 10)),
        ]
        assert not boxes_cover(t, cover)
        witness = uncovered_probe(t, cover)
        assert witness is not None
        assert witness[0] > 5 and witness[1] > 5

    def test_empty_target_covered(self):
        assert boxes_cover((Interval(1, 0),), [])

    def test_dimension_mismatch_ignored(self):
        t = (Interval(0, 1),)
        assert not boxes_cover(t, [(Interval(0, 1), Interval(0, 1))])

    def test_budget_guard(self):
        t = tuple(Interval(0, 1) for _ in range(6))
        cover = [
            tuple(Interval(i / 50, i / 50 + 0.5) for _ in range(6))
            for i in range(40)
        ]
        with pytest.raises(ExactCoverTooLarge):
            boxes_cover(t, cover, max_probes=1000)

    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(0, 8), st.integers(0, 8)),
            max_size=6,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_exact_agrees_with_dense_grid(self, raw):
        cover = [
            (Interval(min(a, b), max(a, b)), Interval(min(c, d), max(c, d)))
            for a, b, c, d in raw
        ]
        target = (Interval(2, 6), Interval(2, 6))
        claimed = boxes_cover(target, cover)
        xs = [2 + 4 * i / 40 for i in range(41)]
        dense = all(
            any(bx.contains(x) and by.contains(y) for bx, by in cover)
            for x in xs
            for y in xs
        )
        # The dense grid can miss thin gaps; exact coverage implies
        # dense coverage, and dense non-coverage implies non-coverage.
        if claimed:
            assert dense
        if not dense:
            assert not claimed


class TestRequiredSamples:
    def test_monotone_in_error(self):
        assert required_samples(0.01, 0.1) > required_samples(0.1, 0.1)

    def test_monotone_in_gap(self):
        assert required_samples(0.05, 0.01) > required_samples(0.05, 0.2)

    def test_bounds_validated(self):
        for bad in (0.0, 1.0, -1.0):
            with pytest.raises(ValueError):
                required_samples(bad, 0.1)
            with pytest.raises(ValueError):
                required_samples(0.1, bad)


class TestProbabilisticSetFilter:
    def test_single_cover_certain(self):
        f = ProbabilisticSetFilter()
        d = f.decide((Interval(2, 3),), [(Interval(0, 10),)])
        assert d.covered and d.certain and d.samples_used == 0

    def test_disjoint_certain_false(self):
        f = ProbabilisticSetFilter()
        d = f.decide((Interval(2, 3),), [(Interval(10, 20),)])
        assert not d.covered and d.certain and d.witness is not None

    def test_corner_witness(self):
        f = ProbabilisticSetFilter()
        # Union clips the upper-right corner.
        target = (Interval(0, 10), Interval(0, 10))
        cover = [
            (Interval(0, 10), Interval(0, 9)),
            (Interval(0, 9), Interval(0, 10)),
        ]
        d = f.decide(target, cover)
        assert not d.covered and d.certain

    def test_true_union_coverage_detected(self):
        f = ProbabilisticSetFilter(0.01, 0.05)
        target = (Interval(0, 10), Interval(0, 10))
        cover = [
            (Interval(0, 10), Interval(0, 6)),
            (Interval(0, 10), Interval(5, 10)),
        ]
        assert f.is_subsumed(target, cover)

    def test_interior_gap_found_with_enough_samples(self):
        f = ProbabilisticSetFilter(0.001, 0.02)
        target = (Interval(0, 10), Interval(0, 10))
        # Horizontal slabs with an interior gap y in (4.0, 4.9) — corners
        # are covered, only sampling can find it.
        cover = [
            (Interval(0, 10), Interval(0, 4)),
            (Interval(0, 10), Interval(4.9, 10)),
        ]
        assert not f.is_subsumed(target, cover)

    def test_one_sided_error_no_false_negatives(self):
        """'not covered' answers must always be truthful."""
        rng = np.random.default_rng(5)
        f = ProbabilisticSetFilter(0.3, 0.3, rng=rng)
        for trial in range(100):
            lo = rng.uniform(0, 5, size=2)
            hi = lo + rng.uniform(0.5, 5, size=2)
            cover = []
            for _ in range(rng.integers(1, 5)):
                clo = rng.uniform(-1, 6, size=2)
                chi = clo + rng.uniform(0.5, 8, size=2)
                cover.append((Interval(clo[0], chi[0]), Interval(clo[1], chi[1])))
            target = (Interval(lo[0], hi[0]), Interval(lo[1], hi[1]))
            decision = f.decide(target, cover)
            if not decision.covered:
                assert not boxes_cover(target, cover)

    def test_product_mode_union_per_dimension(self):
        f = ProbabilisticSetFilter(0.01, 0.05)
        target = (Interval(0, 10), Interval(0, 10))
        # Per-dimension unions (the FSF criterion): dimension 0 covered
        # by [0,6]u[5,10], dimension 1 by [0,10].
        assert f.is_product_subsumed(
            target,
            [[Interval(0, 6), Interval(5, 10)], [Interval(-1, 11)]],
        )
        assert not f.is_product_subsumed(
            target,
            [[Interval(0, 6), Interval(7, 10)], [Interval(-1, 11)]],
        )

    def test_product_mode_validates_dimensions(self):
        f = ProbabilisticSetFilter()
        with pytest.raises(ValueError):
            f.decide_product((Interval(0, 1),), [])

    def test_product_mode_empty_dimension_certain_false(self):
        f = ProbabilisticSetFilter()
        d = f.decide_product((Interval(0, 1), Interval(0, 1)), [[Interval(0, 1)], []])
        assert not d.covered and d.certain

    def test_counters_advance(self):
        f = ProbabilisticSetFilter()
        f.is_subsumed((Interval(0, 1),), [(Interval(0, 2),)])
        assert f.checks == 1
