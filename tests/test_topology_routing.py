"""Tests for deployment topologies and tree routing."""

import networkx as nx
import pytest

from repro.network.routing import RoutingTable, graph_center
from repro.network.topology import (
    build_deployment,
    large_network,
    large_sources,
    medium_scale,
    small_scale,
)


class TestDeployments:
    @pytest.mark.parametrize(
        "factory,n_nodes,n_sensors,n_groups",
        [
            (small_scale, 60, 50, 10),
            (medium_scale, 100, 50, 10),
            (large_network, 200, 50, 10),
            (large_sources, 200, 100, 20),
        ],
    )
    def test_paper_scenarios_shape(self, factory, n_nodes, n_sensors, n_groups):
        dep = factory(seed=1)
        assert dep.n_nodes == n_nodes
        assert len(dep.sensors) == n_sensors
        assert len(dep.groups) == n_groups
        assert nx.is_tree(dep.graph)

    def test_groups_have_one_sensor_per_attribute(self):
        dep = small_scale(seed=0)
        for group in dep.groups.values():
            attrs = [s.attribute.name for s in group]
            assert len(attrs) == len(set(attrs)) == 5

    def test_group_chain_members_are_neighbors(self):
        """'nodes with sensors from the same base station in a vicinity,
        such that they are neighbors' — the chain property."""
        dep = small_scale(seed=2)
        for g, members in dep.groups.items():
            ids = [m.node_id for m in members]
            chain = [dep.group_heads[g]] + ids
            for a, b in zip(chain, chain[1:]):
                assert dep.graph.has_edge(a, b)

    def test_sensor_locations_near_station(self):
        dep = build_deployment(60, 10, seed=3, station_spread=1.0)
        for members in dep.groups.values():
            locs = [m.location for m in members]
            for a in locs:
                for b in locs:
                    assert a.distance_to(b) <= 4.0

    def test_deterministic_in_seed(self):
        a, b = small_scale(seed=9), small_scale(seed=9)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)
        assert [s.sensor_id for s in a.sensors] == [s.sensor_id for s in b.sensors]
        c = small_scale(seed=10)
        assert sorted(a.graph.edges) != sorted(c.graph.edges)

    def test_too_few_relays_rejected(self):
        with pytest.raises(ValueError):
            build_deployment(51, 10)  # 50 sensor nodes + 1 relay < 10 heads

    def test_user_nodes_are_relays(self):
        dep = small_scale(seed=0)
        sensor_nodes = {s.node_id for s in dep.sensors}
        assert not set(dep.user_nodes) & sensor_nodes
        assert len(dep.user_nodes) == 10

    def test_sensor_by_id(self):
        dep = small_scale(seed=0)
        s = dep.sensors[3]
        assert dep.sensor_by_id(s.sensor_id) is s
        with pytest.raises(KeyError):
            dep.sensor_by_id("nope")


class TestRouting:
    def test_path_on_a_line(self):
        g = nx.path_graph(5)
        g = nx.relabel_nodes(g, {i: f"n{i}" for i in range(5)})
        table = RoutingTable(g)
        assert table.next_hop("n0", "n4") == "n1"
        assert table.distance("n0", "n4") == 4
        assert table.path("n0", "n3") == ["n0", "n1", "n2", "n3"]
        assert table.distance("n2", "n2") == 0
        with pytest.raises(ValueError):
            table.next_hop("n1", "n1")

    def test_center_of_a_line_is_middle(self):
        g = nx.relabel_nodes(nx.path_graph(7), {i: f"n{i}" for i in range(7)})
        assert graph_center(g) == "n3"

    def test_center_deterministic_tie_break(self):
        g = nx.Graph([("a", "b")])
        assert graph_center(g) == "a"

    def test_routes_cover_deployment(self):
        dep = small_scale(seed=1)
        table = RoutingTable(dep.graph)
        center = graph_center(dep.graph)
        for node in dep.graph.nodes:
            if node == center:
                continue
            path = table.path(node, center)
            assert path[0] == node and path[-1] == center
            assert len(path) - 1 == table.distance(node, center)
