"""Tests for traffic metering and message unit accounting."""

import pytest

from repro.model import Advertisement, Interval, Location, SimpleEvent
from repro.model.operators import CorrelationOperator, Slot
from repro.network.links import TrafficMeter
from repro.network.messages import (
    AdvertisementMessage,
    EventMessage,
    OperatorMessage,
)


def _event():
    return SimpleEvent("d", "t", Location(0, 0), 1.0, 0.0, 0)


def _operator():
    return CorrelationOperator(
        "s", "n", [Slot("d", "t", Interval(0, 1), frozenset({"d"}))], 1.0
    )


class TestMessageUnits:
    def test_advertisement_units(self):
        msg = AdvertisementMessage(Advertisement("d", "t", Location(0, 0)))
        assert (msg.advertisement_units, msg.subscription_units, msg.event_units) == (
            1,
            0,
            0,
        )

    def test_operator_units(self):
        msg = OperatorMessage(_operator())
        assert (msg.advertisement_units, msg.subscription_units, msg.event_units) == (
            0,
            1,
            0,
        )

    def test_pubsub_event_is_one_unit(self):
        assert EventMessage(_event()).event_units == 1

    def test_per_stream_event_units(self):
        assert EventMessage(_event(), streams=("a", "b", "c")).event_units == 3


class TestTrafficMeter:
    def test_record_accumulates_by_kind(self):
        meter = TrafficMeter()
        meter.record(("a", "b"), OperatorMessage(_operator()))
        meter.record(("a", "b"), EventMessage(_event()))
        meter.record(("b", "c"), EventMessage(_event(), streams=("x", "y")))
        assert meter.subscription_units == 1
        assert meter.event_units == 3
        assert meter.messages == 3

    def test_hops_multiply_units(self):
        meter = TrafficMeter()
        meter.record(("a", "b"), EventMessage(_event()), hops=4)
        assert meter.event_units == 4
        assert meter.messages == 1

    def test_snapshot_minus(self):
        meter = TrafficMeter()
        meter.record(("a", "b"), OperatorMessage(_operator()))
        before = meter.snapshot()
        meter.record(("a", "b"), EventMessage(_event()))
        delta = meter.snapshot().minus(before)
        assert delta.subscription_units == 0
        assert delta.event_units == 1
        assert delta.messages == 1

    def test_per_link_breakdown_and_busiest(self):
        meter = TrafficMeter()
        for _ in range(3):
            meter.record(("a", "b"), EventMessage(_event()))
        meter.record(("b", "c"), EventMessage(_event()))
        assert meter.per_link_events[("a", "b")] == 3
        assert meter.busiest_links(1) == [(("a", "b"), 3)]

    def test_directions_counted_separately(self):
        meter = TrafficMeter()
        meter.record(("a", "b"), EventMessage(_event()))
        meter.record(("b", "a"), EventMessage(_event()))
        assert meter.per_link[("a", "b")] == 1
        assert meter.per_link[("b", "a")] == 1
