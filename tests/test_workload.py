"""Tests for the synthetic SensorScope workload."""

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.model.attributes import AMBIENT_TEMPERATURE, RELATIVE_HUMIDITY
from repro.network.topology import build_deployment, small_scale
from repro.workload import (
    ALL_SCENARIOS,
    CHURN,
    ChurnConfig,
    DynamicReplayConfig,
    ReplayConfig,
    SMALL,
    SubscriptionWorkloadConfig,
    build_churn_schedule,
    build_dynamic_replay,
    build_replay,
    bursty_round_times,
    generate_subscriptions,
    synthesize_stream,
    synthesize_stream_at,
)
from repro.workload.scenarios import default_scale
from repro.workload.streams import profile_for, station_offset


class TestStreams:
    def test_values_within_domain(self):
        rng = np.random.default_rng(0)
        for attr in (AMBIENT_TEMPERATURE, RELATIVE_HUMIDITY):
            values = synthesize_stream(attr, 500, 10.0, rng)
            assert values.min() >= attr.domain.lo
            assert values.max() <= attr.domain.hi

    def test_deterministic_given_rng_seed(self):
        a = synthesize_stream(AMBIENT_TEMPERATURE, 50, 10.0, np.random.default_rng(1))
        b = synthesize_stream(AMBIENT_TEMPERATURE, 50, 10.0, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_autocorrelation_present(self):
        values = synthesize_stream(
            AMBIENT_TEMPERATURE, 2000, 10.0, np.random.default_rng(2)
        )
        x = values - values.mean()
        r1 = float(np.dot(x[:-1], x[1:]) / np.dot(x, x))
        assert r1 > 0.4, "AR(1) structure should persist"

    def test_rounds_positive(self):
        with pytest.raises(ValueError):
            synthesize_stream(AMBIENT_TEMPERATURE, 0, 10.0, np.random.default_rng(0))

    def test_profiles_cover_sensorscope(self):
        assert profile_for(AMBIENT_TEMPERATURE).mean < 10.0
        assert profile_for(RELATIVE_HUMIDITY).mean > 50.0


class TestReplay:
    def test_one_reading_per_sensor_per_round(self):
        dep = small_scale(seed=1)
        replay = build_replay(dep, ReplayConfig(rounds=7))
        assert replay.n_events == 7 * len(dep.sensors)
        per_sensor = {}
        for e in replay.events:
            per_sensor.setdefault(e.sensor_id, []).append(e)
        for events in per_sensor.values():
            assert len(events) == 7
            assert sorted(e.seq for e in events) == list(range(7))

    def test_jitter_bounded_and_rounds_disjoint(self):
        cfg = ReplayConfig(rounds=5, round_period=10.0, jitter=2.0)
        replay = build_replay(small_scale(seed=1), cfg)
        for e in replay.events:
            nominal = (e.seq + 1) * cfg.round_period
            assert abs(e.timestamp - nominal) <= cfg.jitter

    def test_medians_and_spreads_computed(self):
        dep = small_scale(seed=1)
        replay = build_replay(dep, ReplayConfig(rounds=10))
        assert set(replay.medians) == {s.sensor_id for s in dep.sensors}
        assert all(v > 0 for v in replay.spreads.values())

    def test_shifted_preserves_everything_but_time(self):
        replay = build_replay(small_scale(seed=1), ReplayConfig(rounds=3))
        shifted = replay.shifted(1000.0)
        assert len(shifted) == replay.n_events
        for a, b in zip(replay.events, shifted):
            assert b.timestamp == a.timestamp + 1000.0
            assert (b.sensor_id, b.seq, b.value) == (a.sensor_id, a.seq, a.value)

    def test_replay_deterministic(self):
        dep = small_scale(seed=4)
        a = build_replay(dep, ReplayConfig(rounds=4))
        b = build_replay(dep, ReplayConfig(rounds=4))
        assert [e.key for e in a.events] == [e.key for e in b.events]
        assert [e.value for e in a.events] == [e.value for e in b.events]

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            ReplayConfig(rounds=5, round_period=10.0, jitter=6.0)

    def test_events_of_sensor_tolerates_absent_sensor(self):
        """Churn makes sensor absence a normal outcome: asking a replay
        about an unknown (or fully departed) sensor returns empty, never
        raises."""
        replay = build_replay(small_scale(seed=1), ReplayConfig(rounds=2))
        assert replay.events_of_sensor("no-such-sensor") == []
        assert "no-such-sensor" not in replay.sensor_ids
        known = replay.sensor_ids[0]
        assert len(replay.events_of_sensor(known)) == 2


class TestDynamicStreams:
    def test_bursty_round_times_monotone_and_bursty(self):
        rng = np.random.default_rng(3)
        times = bursty_round_times(
            400, 10.0, rng, day_seconds=4000.0, rate_amplitude=0.5
        )
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert (gaps > 0).all()
        # Heavy-tailed pacing: the largest gap dwarfs the median one.
        assert gaps.max() > 3 * np.median(gaps)

    def test_bursty_round_times_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bursty_round_times(0, 10.0, rng)
        with pytest.raises(ValueError):
            bursty_round_times(5, 10.0, rng, rate_amplitude=1.5)
        with pytest.raises(ValueError):
            bursty_round_times(5, 10.0, rng, burst_shape=1.0)

    def test_drift_moves_the_mean_across_days(self):
        times = np.linspace(0.0, 4 * 100.0, 400)  # four 100s "days"
        rng = np.random.default_rng(5)
        drifted = synthesize_stream_at(
            AMBIENT_TEMPERATURE, times, rng, day_seconds=100.0, drift_per_day=3.0
        )
        rng = np.random.default_rng(5)
        flat = synthesize_stream_at(
            AMBIENT_TEMPERATURE, times, rng, day_seconds=100.0, drift_per_day=0.0
        )
        # Same noise draw, so the difference is the deterministic drift.
        last_day = slice(300, 400)
        sigma = profile_for(AMBIENT_TEMPERATURE).noise_sigma
        assert (drifted[last_day] - flat[last_day]).mean() > 2.5 * sigma

    def test_values_within_domain(self):
        times = np.linspace(0.0, 200.0, 100)
        values = synthesize_stream_at(
            RELATIVE_HUMIDITY, times, np.random.default_rng(1), drift_per_day=5.0
        )
        assert values.min() >= RELATIVE_HUMIDITY.domain.lo
        assert values.max() <= RELATIVE_HUMIDITY.domain.hi


class TestChurnSchedule:
    def test_requested_fraction_cycles(self):
        dep = small_scale(seed=2)
        schedule = build_churn_schedule(
            dep, span=400.0, config=ChurnConfig(cycle_fraction=0.25)
        )
        assert len(schedule.cycling_sensors) == round(0.25 * len(dep.sensors))
        for spans in schedule.intervals.values():
            # Present at setup, back for good at the end, ordered spans.
            assert spans[0][0] == float("-inf")
            assert spans[-1][1] == float("inf")
            for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                assert s1 < e1 < s2

    def test_alive_interval_queries(self):
        dep = small_scale(seed=2)
        schedule = build_churn_schedule(
            dep, span=400.0, config=ChurnConfig(cycle_fraction=0.2)
        )
        sensor = schedule.cycling_sensors[0]
        (_, leave), (rejoin, _) = schedule.intervals[sensor][:2]
        assert schedule.alive_at(sensor, leave - 1e-6)
        assert not schedule.alive_at(sensor, leave)
        assert schedule.alive_at(sensor, rejoin)
        assert not schedule.same_interval(sensor, leave - 1.0, rejoin + 1.0)
        assert schedule.same_interval(sensor, leave - 2.0, leave - 1.0)
        # Non-cycling sensors are alive forever.
        assert schedule.alive_at("anything-else", 1e9)

    def test_transitions_alternate_and_shift(self):
        dep = small_scale(seed=2)
        schedule = build_churn_schedule(
            dep, span=400.0, config=ChurnConfig(cycle_fraction=0.2, cycles=2)
        )
        transitions = schedule.transitions()
        assert transitions == sorted(transitions)
        per_sensor: dict[str, list[str]] = {}
        for _t, sensor_id, kind in transitions:
            per_sensor.setdefault(sensor_id, []).append(kind)
        for kinds in per_sensor.values():
            assert kinds == ["leave", "join", "leave", "join"]
        moved = schedule.shifted(1000.0)
        assert [
            (t + 1000.0, s, k) for t, s, k in transitions
        ] == moved.transitions()

    def test_zero_fraction_is_empty(self):
        dep = small_scale(seed=2)
        schedule = build_churn_schedule(
            dep, span=400.0, config=ChurnConfig(cycle_fraction=0.0)
        )
        assert not schedule
        assert schedule.transitions() == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(cycle_fraction=1.5)
        with pytest.raises(ValueError):
            ChurnConfig(cycles=0)
        with pytest.raises(ValueError):
            ChurnConfig(min_off_fraction=0.3, max_off_fraction=0.2)
        with pytest.raises(ValueError):
            ChurnConfig(start_margin=0.5, end_margin=0.5)


class TestDynamicReplay:
    def _arena(self, seed=3):
        dep = build_deployment(24, 3, seed=seed)
        return dep, build_dynamic_replay(
            dep,
            DynamicReplayConfig(days=2, rounds_per_day=8, day_seconds=120.0),
            ChurnConfig(cycle_fraction=0.3),
        )

    def test_spans_multiple_days(self):
        _, replay = self._arena()
        assert replay.span > 2 * 120.0 * 0.5  # bursty clock, ~2 days
        assert len(replay.round_times) == 16

    def test_events_only_while_alive(self):
        _, replay = self._arena()
        assert replay.churn.cycling_sensors
        suppressed = 0
        for event in replay.events:
            assert replay.churn.alive_at(event.sensor_id, event.timestamp)
        for sensor_id in replay.churn.cycling_sensors:
            suppressed += 16 - len(replay.events_of_sensor(sensor_id))
        assert suppressed > 0  # churn genuinely removed publications

    def test_statistics_cover_every_sensor(self):
        """Medians/spreads come from the full synthesized series, so
        even a sensor that published nothing has subscription stats."""
        dep, replay = self._arena()
        for placement in dep.sensors:
            assert placement.sensor_id in replay.medians
            assert replay.spreads[placement.sensor_id] > 0

    def test_deterministic(self):
        _, a = self._arena()
        _, b = self._arena()
        assert [(e.key, e.value, e.timestamp) for e in a.events] == [
            (e.key, e.value, e.timestamp) for e in b.events
        ]
        assert a.churn.intervals == b.churn.intervals

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DynamicReplayConfig(days=0)
        with pytest.raises(ValueError):
            DynamicReplayConfig(rate_amplitude=1.0)
        with pytest.raises(ValueError):
            DynamicReplayConfig(jitter=-1.0)


class TestReplayHashseedStability:
    """The replay must be a pure function of the declared seeds — across
    *processes*, not just within one.  ``build_replay`` once seeded its
    per-sensor RNGs from builtin ``hash((seed, cfg.seed, sensor_id))``,
    which varies with PYTHONHASHSEED: worker processes of the sharded
    runner would synthesize different events than the parent computed
    ground truth for.  Mirrors ``test_sim.py``'s ``TestRngStability``."""

    _DRAW = (
        "import sys; sys.path.insert(0, {path!r}); "
        "from repro.network.topology import small_scale; "
        "from repro.workload.sensorscope import ReplayConfig, build_replay; "
        "r = build_replay(small_scale(seed=1), ReplayConfig(rounds=2)); "
        "print([(e.sensor_id, e.seq, e.timestamp, e.value) for e in r.events[:10]]); "
        "print(sorted(r.medians.items())[:5]); "
        "print(sorted(r.spreads.items())[:5])"
    )

    def _replay_in_subprocess(self, hashseed: str) -> str:
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        out = subprocess.run(
            [sys.executable, "-c", self._DRAW.format(path=src)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return out.stdout.strip()

    def test_replay_stable_across_hash_randomization(self):
        replays = {self._replay_in_subprocess(s) for s in ("0", "1", "31337")}
        assert len(replays) == 1, (
            "replay seeding must not depend on PYTHONHASHSEED; got "
            f"{len(replays)} distinct replays"
        )

    def test_replay_matches_in_process_build(self):
        replay = build_replay(small_scale(seed=1), ReplayConfig(rounds=2))
        local = "\n".join(
            [
                str([(e.sensor_id, e.seq, e.timestamp, e.value) for e in replay.events[:10]]),
                str(sorted(replay.medians.items())[:5]),
                str(sorted(replay.spreads.items())[:5]),
            ]
        )
        assert self._replay_in_subprocess("42") == local

    def test_derive_seed_pinned(self):
        """The derivation is part of the reproducibility contract: a
        changed constant silently invalidates every recorded series."""
        from repro.seeding import derive_seed

        assert derive_seed(7, "x") == 9003230406568570505
        assert derive_seed(1, 7, "s00") == 6152236867863631918
        assert derive_seed(7, "x") != derive_seed(7, "y")


class TestSubscriptionGenerator:
    def _workload(self, n=40, **kw):
        dep = small_scale(seed=2)
        replay = build_replay(dep, ReplayConfig(rounds=10))
        cfg = SubscriptionWorkloadConfig(n_subscriptions=n, attrs_min=3, attrs_max=5, **kw)
        return dep, generate_subscriptions(dep, replay.medians, cfg, replay.spreads)

    def test_even_group_targeting(self):
        dep, workload = self._workload(n=40)
        groups = {}
        for placed in workload:
            sensors = placed.subscription.sensor_ids
            group = {s.group for s in dep.sensors if s.sensor_id in sensors}
            assert len(group) == 1, "a subscription targets one group"
            g = group.pop()
            groups[g] = groups.get(g, 0) + 1
        assert set(groups) == set(range(10))
        assert all(count == 4 for count in groups.values())

    def test_attribute_count_in_bounds(self):
        _, workload = self._workload(n=30)
        for placed in workload:
            assert 3 <= len(placed.subscription.filters) <= 5

    def test_users_on_relays(self):
        dep, workload = self._workload(n=30)
        assert {p.node_id for p in workload} <= set(dep.user_nodes)

    def test_ranges_inside_domains(self):
        dep, workload = self._workload(n=60)
        domains = {s.sensor_id: s.attribute.domain for s in dep.sensors}
        for placed in workload:
            for f in placed.subscription.filters:
                assert domains[f.sensor_id].contains_interval(f.interval)
                assert not f.interval.is_empty

    def test_deterministic(self):
        _, w1 = self._workload(n=20)
        _, w2 = self._workload(n=20)
        assert [p.subscription.sub_id for p in w1] == [
            p.subscription.sub_id for p in w2
        ]
        for a, b in zip(w1, w2):
            assert a.node_id == b.node_id
            assert a.subscription.filters == b.subscription.filters

    def test_seed_changes_workload(self):
        _, w1 = self._workload(n=20, seed=1)
        _, w2 = self._workload(n=20, seed=2)
        assert any(
            a.subscription.filters != b.subscription.filters
            for a, b in zip(w1, w2)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SubscriptionWorkloadConfig(n_subscriptions=-1)
        with pytest.raises(ValueError):
            SubscriptionWorkloadConfig(n_subscriptions=1, attrs_min=3, attrs_max=2)


class TestScenarios:
    def test_nine_scenarios_registered(self):
        assert set(ALL_SCENARIOS) == {
            "small",
            "medium",
            "large_network",
            "large_sources",
            "churn",
            "admit_retire",
            "faults",
            "placement",
            "sketches",
        }
        churn = ALL_SCENARIOS["churn"]
        # The acceptance floor of the dynamic family: at least two
        # simulated days and at least 20% of the sensors cycling.
        assert churn.dynamic is not None and churn.dynamic.days >= 2
        assert churn.churn is not None and churn.churn.cycle_fraction >= 0.2
        admit_retire = ALL_SCENARIOS["admit_retire"]
        # The acceptance floor of the query-assignment family: an
        # ongoing lifecycle with finite holds, all five approaches.
        assert admit_retire.lifecycle is not None
        assert admit_retire.lifecycle.hold is not None
        assert admit_retire.include_centralized
        faults = ALL_SCENARIOS["faults"]
        # The acceptance floor of the unreliable-transport family: real
        # link loss, the reliability layer on, all five approaches.
        assert faults.faults is not None and faults.faults.default.drop > 0
        assert faults.reliability is not None
        assert faults.include_centralized
        placement = ALL_SCENARIOS["placement"]
        # The acceptance floor of the placement family: a tiered
        # (heterogeneous) deployment, a skewed cross-group workload,
        # and exact FSF filtering so recall stays pinned at 100% while
        # the traffic axis moves.
        assert not placement.deployment_factory(seed=0).is_homogeneous
        assert placement.span_groups == 2
        assert placement.group_width_scale is not None
        wide, narrow = placement.group_width_scale
        assert wide > 1.0 > narrow
        assert placement.fsf_config is not None
        assert placement.fsf_config.exact_filtering
        sketches = ALL_SCENARIOS["sketches"]
        # The acceptance floor of the approximate-answer family: every
        # generated query sketch-eligible (single-attribute clauses), a
        # long replay so bounded-size digests beat raw shipping, and
        # the exact frontier includes centralized raw shipping.  The
        # scenario itself is the exact lane; the figure harness derives
        # the approximate lanes via sketches_variant(k).
        assert sketches.attrs_min == sketches.attrs_max == 1
        assert sketches.replay is not None and sketches.replay.rounds >= 96
        assert sketches.include_centralized
        assert sketches.answer_mode == "exact" and sketches.sketch is None

    def test_counts_scale(self):
        full = SMALL.subscription_counts(scale=1.0)
        assert full == list(range(100, 1001, 100))
        tenth = SMALL.subscription_counts(scale=0.1)
        assert tenth == list(range(10, 101, 10))

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "3.0")
        with pytest.raises(ValueError):
            default_scale()

    def test_scale_presets(self, monkeypatch):
        from repro.workload.scenarios import SCALE_PRESETS, parse_scale

        assert parse_scale("full") == 1.0
        assert parse_scale("ci") == SCALE_PRESETS["ci"]
        assert parse_scale("0.25") == 0.25
        monkeypatch.setenv("REPRO_SCALE", "nightly")
        assert default_scale() == SCALE_PRESETS["nightly"]
        with pytest.raises(ValueError):
            parse_scale("bogus")
