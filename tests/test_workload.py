"""Tests for the synthetic SensorScope workload."""

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.model.attributes import AMBIENT_TEMPERATURE, RELATIVE_HUMIDITY
from repro.network.topology import small_scale
from repro.workload import (
    ALL_SCENARIOS,
    ReplayConfig,
    SMALL,
    SubscriptionWorkloadConfig,
    build_replay,
    generate_subscriptions,
    synthesize_stream,
)
from repro.workload.scenarios import default_scale
from repro.workload.streams import profile_for, station_offset


class TestStreams:
    def test_values_within_domain(self):
        rng = np.random.default_rng(0)
        for attr in (AMBIENT_TEMPERATURE, RELATIVE_HUMIDITY):
            values = synthesize_stream(attr, 500, 10.0, rng)
            assert values.min() >= attr.domain.lo
            assert values.max() <= attr.domain.hi

    def test_deterministic_given_rng_seed(self):
        a = synthesize_stream(AMBIENT_TEMPERATURE, 50, 10.0, np.random.default_rng(1))
        b = synthesize_stream(AMBIENT_TEMPERATURE, 50, 10.0, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_autocorrelation_present(self):
        values = synthesize_stream(
            AMBIENT_TEMPERATURE, 2000, 10.0, np.random.default_rng(2)
        )
        x = values - values.mean()
        r1 = float(np.dot(x[:-1], x[1:]) / np.dot(x, x))
        assert r1 > 0.4, "AR(1) structure should persist"

    def test_rounds_positive(self):
        with pytest.raises(ValueError):
            synthesize_stream(AMBIENT_TEMPERATURE, 0, 10.0, np.random.default_rng(0))

    def test_profiles_cover_sensorscope(self):
        assert profile_for(AMBIENT_TEMPERATURE).mean < 10.0
        assert profile_for(RELATIVE_HUMIDITY).mean > 50.0


class TestReplay:
    def test_one_reading_per_sensor_per_round(self):
        dep = small_scale(seed=1)
        replay = build_replay(dep, ReplayConfig(rounds=7))
        assert replay.n_events == 7 * len(dep.sensors)
        per_sensor = {}
        for e in replay.events:
            per_sensor.setdefault(e.sensor_id, []).append(e)
        for events in per_sensor.values():
            assert len(events) == 7
            assert sorted(e.seq for e in events) == list(range(7))

    def test_jitter_bounded_and_rounds_disjoint(self):
        cfg = ReplayConfig(rounds=5, round_period=10.0, jitter=2.0)
        replay = build_replay(small_scale(seed=1), cfg)
        for e in replay.events:
            nominal = (e.seq + 1) * cfg.round_period
            assert abs(e.timestamp - nominal) <= cfg.jitter

    def test_medians_and_spreads_computed(self):
        dep = small_scale(seed=1)
        replay = build_replay(dep, ReplayConfig(rounds=10))
        assert set(replay.medians) == {s.sensor_id for s in dep.sensors}
        assert all(v > 0 for v in replay.spreads.values())

    def test_shifted_preserves_everything_but_time(self):
        replay = build_replay(small_scale(seed=1), ReplayConfig(rounds=3))
        shifted = replay.shifted(1000.0)
        assert len(shifted) == replay.n_events
        for a, b in zip(replay.events, shifted):
            assert b.timestamp == a.timestamp + 1000.0
            assert (b.sensor_id, b.seq, b.value) == (a.sensor_id, a.seq, a.value)

    def test_replay_deterministic(self):
        dep = small_scale(seed=4)
        a = build_replay(dep, ReplayConfig(rounds=4))
        b = build_replay(dep, ReplayConfig(rounds=4))
        assert [e.key for e in a.events] == [e.key for e in b.events]
        assert [e.value for e in a.events] == [e.value for e in b.events]

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            ReplayConfig(rounds=5, round_period=10.0, jitter=6.0)


class TestReplayHashseedStability:
    """The replay must be a pure function of the declared seeds — across
    *processes*, not just within one.  ``build_replay`` once seeded its
    per-sensor RNGs from builtin ``hash((seed, cfg.seed, sensor_id))``,
    which varies with PYTHONHASHSEED: worker processes of the sharded
    runner would synthesize different events than the parent computed
    ground truth for.  Mirrors ``test_sim.py``'s ``TestRngStability``."""

    _DRAW = (
        "import sys; sys.path.insert(0, {path!r}); "
        "from repro.network.topology import small_scale; "
        "from repro.workload.sensorscope import ReplayConfig, build_replay; "
        "r = build_replay(small_scale(seed=1), ReplayConfig(rounds=2)); "
        "print([(e.sensor_id, e.seq, e.timestamp, e.value) for e in r.events[:10]]); "
        "print(sorted(r.medians.items())[:5]); "
        "print(sorted(r.spreads.items())[:5])"
    )

    def _replay_in_subprocess(self, hashseed: str) -> str:
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        out = subprocess.run(
            [sys.executable, "-c", self._DRAW.format(path=src)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return out.stdout.strip()

    def test_replay_stable_across_hash_randomization(self):
        replays = {self._replay_in_subprocess(s) for s in ("0", "1", "31337")}
        assert len(replays) == 1, (
            "replay seeding must not depend on PYTHONHASHSEED; got "
            f"{len(replays)} distinct replays"
        )

    def test_replay_matches_in_process_build(self):
        replay = build_replay(small_scale(seed=1), ReplayConfig(rounds=2))
        local = "\n".join(
            [
                str([(e.sensor_id, e.seq, e.timestamp, e.value) for e in replay.events[:10]]),
                str(sorted(replay.medians.items())[:5]),
                str(sorted(replay.spreads.items())[:5]),
            ]
        )
        assert self._replay_in_subprocess("42") == local

    def test_derive_seed_pinned(self):
        """The derivation is part of the reproducibility contract: a
        changed constant silently invalidates every recorded series."""
        from repro.seeding import derive_seed

        assert derive_seed(7, "x") == 9003230406568570505
        assert derive_seed(1, 7, "s00") == 6152236867863631918
        assert derive_seed(7, "x") != derive_seed(7, "y")


class TestSubscriptionGenerator:
    def _workload(self, n=40, **kw):
        dep = small_scale(seed=2)
        replay = build_replay(dep, ReplayConfig(rounds=10))
        cfg = SubscriptionWorkloadConfig(n_subscriptions=n, attrs_min=3, attrs_max=5, **kw)
        return dep, generate_subscriptions(dep, replay.medians, cfg, replay.spreads)

    def test_even_group_targeting(self):
        dep, workload = self._workload(n=40)
        groups = {}
        for placed in workload:
            sensors = placed.subscription.sensor_ids
            group = {s.group for s in dep.sensors if s.sensor_id in sensors}
            assert len(group) == 1, "a subscription targets one group"
            g = group.pop()
            groups[g] = groups.get(g, 0) + 1
        assert set(groups) == set(range(10))
        assert all(count == 4 for count in groups.values())

    def test_attribute_count_in_bounds(self):
        _, workload = self._workload(n=30)
        for placed in workload:
            assert 3 <= len(placed.subscription.filters) <= 5

    def test_users_on_relays(self):
        dep, workload = self._workload(n=30)
        assert {p.node_id for p in workload} <= set(dep.user_nodes)

    def test_ranges_inside_domains(self):
        dep, workload = self._workload(n=60)
        domains = {s.sensor_id: s.attribute.domain for s in dep.sensors}
        for placed in workload:
            for f in placed.subscription.filters:
                assert domains[f.sensor_id].contains_interval(f.interval)
                assert not f.interval.is_empty

    def test_deterministic(self):
        _, w1 = self._workload(n=20)
        _, w2 = self._workload(n=20)
        assert [p.subscription.sub_id for p in w1] == [
            p.subscription.sub_id for p in w2
        ]
        for a, b in zip(w1, w2):
            assert a.node_id == b.node_id
            assert a.subscription.filters == b.subscription.filters

    def test_seed_changes_workload(self):
        _, w1 = self._workload(n=20, seed=1)
        _, w2 = self._workload(n=20, seed=2)
        assert any(
            a.subscription.filters != b.subscription.filters
            for a, b in zip(w1, w2)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SubscriptionWorkloadConfig(n_subscriptions=-1)
        with pytest.raises(ValueError):
            SubscriptionWorkloadConfig(n_subscriptions=1, attrs_min=3, attrs_max=2)


class TestScenarios:
    def test_four_scenarios_registered(self):
        assert set(ALL_SCENARIOS) == {
            "small",
            "medium",
            "large_network",
            "large_sources",
        }

    def test_counts_scale(self):
        full = SMALL.subscription_counts(scale=1.0)
        assert full == list(range(100, 1001, 100))
        tenth = SMALL.subscription_counts(scale=0.1)
        assert tenth == list(range(10, 101, 10))

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "3.0")
        with pytest.raises(ValueError):
            default_scale()

    def test_scale_presets(self, monkeypatch):
        from repro.workload.scenarios import SCALE_PRESETS, parse_scale

        assert parse_scale("full") == 1.0
        assert parse_scale("ci") == SCALE_PRESETS["ci"]
        assert parse_scale("0.25") == 0.25
        monkeypatch.setenv("REPRO_SCALE", "nightly")
        assert default_scale() == SCALE_PRESETS["nightly"]
        with pytest.raises(ValueError):
            parse_scale("bogus")
