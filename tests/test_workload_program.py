"""The declarative workload-program API.

Pinned here:

* :class:`QueryLifecycleConfig` validation and the determinism /
  shape of :func:`build_lifecycle_edges` (Poisson admissions inside the
  fraction-trimmed window, exponential vs fixed vs never holds);
* :class:`WorkloadProgram` compilation: prefix-stable pools, setup vs
  scheduled admissions, oracle fences on the simulation clock,
  explicit :class:`ProgramQuery` admissions (fluent builders included),
  picklability, and source/program compatibility checks;
* :func:`execute_program` driving a whole program through the Session
  facade: scheduled admissions and retirements actually run, at their
  scheduled instants, and teardown traffic is metered separately.
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import Query
from repro.network.topology import build_deployment
from repro.protocols.registry import all_approaches
from repro.workload.program import (
    REPLAY_START,
    ProgramQuery,
    QueryLifecycleConfig,
    WorkloadProgram,
    build_lifecycle_edges,
    execute_program,
)
from repro.workload.sensorscope import ChurnConfig, DynamicReplayConfig, ReplayConfig
from repro.workload.subscriptions import (
    SubscriptionWorkloadConfig,
    generate_subscriptions,
)


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(24, 3, seed=2)


def tiny_program(n=6, lifecycle=None, **kwargs):
    return WorkloadProgram(
        subscriptions=SubscriptionWorkloadConfig(
            n_subscriptions=n, attrs_min=3, attrs_max=5, seed=2
        ),
        replay=ReplayConfig(rounds=6, seed=3),
        lifecycle=lifecycle,
        **kwargs,
    )


class TestLifecycleConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"admit_rate": 0.0},
            {"admit_rate": -1.0},
            {"hold": 0.0},
            {"hold": -5.0},
            {"hold_distribution": "uniform"},
            {"start_fraction": 0.5, "end_fraction": 0.5},
            {"start_fraction": -0.1},
            {"end_fraction": 1.1},
            {"max_admissions": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QueryLifecycleConfig(**kwargs)

    def test_defaults_are_valid(self):
        cfg = QueryLifecycleConfig()
        assert cfg.hold_distribution == "exponential"


class TestLifecycleEdges:
    CFG = QueryLifecycleConfig(admit_rate=0.2, hold=20.0, seed=5)

    def test_deterministic(self):
        a = build_lifecycle_edges(7, 300.0, self.CFG)
        b = build_lifecycle_edges(7, 300.0, self.CFG)
        assert a == b and len(a) > 0

    def test_seeds_matter(self):
        assert build_lifecycle_edges(7, 300.0, self.CFG) != build_lifecycle_edges(
            8, 300.0, self.CFG
        )

    def test_admissions_inside_window_and_ordered(self):
        span = 300.0
        edges = build_lifecycle_edges(7, span, self.CFG)
        admits = [e.admit for e in edges]
        assert admits == sorted(admits)
        assert all(
            self.CFG.start_fraction * span <= t < self.CFG.end_fraction * span
            for t in admits
        )
        assert all(e.retire is not None and e.retire > e.admit for e in edges)

    def test_fixed_hold_is_exact(self):
        cfg = QueryLifecycleConfig(
            admit_rate=0.2, hold=15.0, hold_distribution="fixed", seed=5
        )
        edges = build_lifecycle_edges(7, 300.0, cfg)
        assert edges and all(e.retire == e.admit + 15.0 for e in edges)

    def test_hold_none_never_retires(self):
        cfg = QueryLifecycleConfig(admit_rate=0.2, hold=None, seed=5)
        edges = build_lifecycle_edges(7, 300.0, cfg)
        assert edges and all(e.retire is None for e in edges)

    def test_max_admissions_caps(self):
        cfg = QueryLifecycleConfig(admit_rate=10.0, hold=5.0, max_admissions=4)
        assert len(build_lifecycle_edges(7, 300.0, cfg)) == 4

    def test_rejects_empty_span(self):
        with pytest.raises(ValueError, match="span"):
            build_lifecycle_edges(7, 0.0, self.CFG)


class TestProgramValidation:
    def test_churn_requires_dynamic(self):
        with pytest.raises(ValueError, match="dynamic"):
            tiny_program(churn=ChurnConfig())

    def test_static_prefix_bounds(self):
        with pytest.raises(ValueError, match="static_prefix"):
            tiny_program(static_prefix=7)
        assert tiny_program(static_prefix=6).prefix == 6
        assert tiny_program().prefix == 6

    def test_program_query_retire_after_admit(self):
        with pytest.raises(ValueError, match="retire"):
            ProgramQuery(Query().where("x", 0, 1), admit=10.0, retire=5.0)


class TestCompile:
    LIFECYCLE = QueryLifecycleConfig(admit_rate=0.2, hold=20.0, seed=5)

    def test_setup_only_matches_generator_prefix(self, deployment):
        """A settled admit-at-t=0 program draws exactly the historical
        fixed-prefix workload (prefix-stable generation)."""
        program = tiny_program(n=6).with_prefix(4)
        compiled = program.compile(deployment)
        replay = program.source(deployment).replay
        direct = generate_subscriptions(
            deployment,
            replay.medians,
            SubscriptionWorkloadConfig(
                n_subscriptions=4, attrs_min=3, attrs_max=5, seed=2
            ),
            spreads=replay.spreads,
        )
        assert [a.subscription for a in compiled.setup] == [
            p.subscription for p in direct
        ]
        assert [a.node_id for a in compiled.setup] == [p.node_id for p in direct]
        assert compiled.scheduled == ()
        assert compiled.activations == {} and compiled.cancellations == {}

    def test_lifecycle_admissions_on_sim_clock(self, deployment):
        program = tiny_program(lifecycle=self.LIFECYCLE)
        source = program.source(deployment)
        compiled = program.compile(deployment, source)
        assert len(compiled.setup) == 6
        assert len(compiled.scheduled) == len(source.edges) > 0
        for adm, edge in zip(compiled.scheduled, source.edges):
            assert adm.admit == pytest.approx(REPLAY_START + edge.admit)
            assert adm.retire == pytest.approx(REPLAY_START + edge.retire)
            assert compiled.activations[adm.sub_id] == adm.admit
            assert compiled.cancellations[adm.sub_id] == adm.retire
        # Lifecycle queries come from the pool *after* the prefix.
        scheduled_ids = {a.sub_id for a in compiled.scheduled}
        setup_ids = {a.sub_id for a in compiled.setup}
        assert not scheduled_ids & setup_ids

    def test_prefix_views_share_one_source(self, deployment):
        program = tiny_program(lifecycle=self.LIFECYCLE)
        source = program.source(deployment)
        small = program.with_prefix(2).compile(deployment, source)
        large = program.with_prefix(6).compile(deployment, source)
        assert [a.sub_id for a in small.setup] == [
            a.sub_id for a in large.setup
        ][:2]
        assert len(small.scheduled) == len(large.scheduled)

    def test_foreign_source_rejected(self, deployment):
        program = tiny_program(lifecycle=self.LIFECYCLE)
        other = tiny_program(lifecycle=None).source(deployment)
        with pytest.raises(ValueError, match="different program"):
            program.compile(deployment, other)
        foreign_deployment = build_deployment(24, 3, seed=9)
        with pytest.raises(ValueError, match="different program"):
            program.compile(foreign_deployment, program.source(deployment))
        # The seed alone does not identify a deployment: a different
        # topology built from the *same* seed must be rejected too.
        same_seed_other_topology = build_deployment(30, 5, seed=deployment.seed)
        with pytest.raises(ValueError, match="different program"):
            program.compile(
                same_seed_other_topology, program.source(deployment)
            )

    def test_explicit_queries_compile(self, deployment):
        sensors = deployment.sensors_of_group(0)[:2]
        query = (
            Query()
            .named("watch")
            .where(sensors[0].sensor_id, -1e6, 1e6)
            .where(sensors[1].sensor_id, -1e6, 1e6)
            .within(5.0)
        )
        program = tiny_program(
            n=2,
            queries=(
                ProgramQuery(query, admit=0.0),
                ProgramQuery(query.named("later"), admit=30.0, retire=60.0),
            ),
        )
        compiled = program.compile(deployment)
        by_id = {a.sub_id: a for a in compiled.admissions}
        assert by_id["watch"].admit is None and by_id["watch"].retire is None
        assert by_id["later"].admit == pytest.approx(REPLAY_START + 30.0)
        assert by_id["later"].retire == pytest.approx(REPLAY_START + 60.0)
        assert by_id["later"].node_id == deployment.user_nodes[0]

    def test_duplicate_ids_rejected(self, deployment):
        sensor = deployment.sensors[0]
        clash = Query().named("q00000").where(sensor.sensor_id, 0.0, 1.0)
        program = tiny_program(queries=(ProgramQuery(clash),))
        with pytest.raises(ValueError, match="duplicate"):
            program.compile(deployment)

    def test_program_is_picklable(self, deployment):
        program = tiny_program(
            lifecycle=self.LIFECYCLE,
            dynamic=None,
        )
        clone = pickle.loads(pickle.dumps(program))
        assert clone == program
        assert clone.compile(deployment).admissions == program.compile(
            deployment
        ).admissions

    def test_dynamic_program_with_churn(self, deployment):
        program = WorkloadProgram(
            subscriptions=SubscriptionWorkloadConfig(
                n_subscriptions=4, attrs_min=3, attrs_max=5, seed=2
            ),
            dynamic=DynamicReplayConfig(days=2, rounds_per_day=6, day_seconds=100.0),
            churn=ChurnConfig(cycle_fraction=0.3),
            lifecycle=self.LIFECYCLE,
        )
        compiled = program.compile(deployment)
        assert compiled.churn is not None
        assert compiled.events and compiled.scheduled


class TestExecution:
    LIFECYCLE = QueryLifecycleConfig(admit_rate=0.2, hold=20.0, seed=5)

    @pytest.fixture(scope="class")
    def outcome(self, deployment):
        program = tiny_program(lifecycle=self.LIFECYCLE)
        compiled = program.compile(deployment)
        execution = execute_program(compiled, all_approaches()["fsf"])
        return compiled, execution

    def test_every_scheduled_admission_ran(self, outcome):
        compiled, execution = outcome
        assert execution.admitted == len(compiled.scheduled) > 0
        assert set(execution.handles) == {a.sub_id for a in compiled.admissions}

    def test_retirements_ran_at_their_scheduled_instants(self, outcome):
        compiled, execution = outcome
        session = execution.session
        assert execution.retired == len(compiled.cancellations) > 0
        for sub_id, when in compiled.cancellations.items():
            assert session.cancellations[sub_id] == pytest.approx(when)
            assert not execution.handles[sub_id].active

    def test_teardown_units_metered_separately(self, outcome):
        compiled, execution = outcome
        assert execution.final.teardown_units > 0
        assert execution.final.teardown_units < execution.final.subscription_units
        # Setup never tears anything down.
        assert execution.after_setup.teardown_units == 0

    def test_execution_is_deterministic(self, deployment, outcome):
        compiled, execution = outcome
        again = execute_program(compiled, all_approaches()["fsf"])
        assert again.final == execution.final
        assert again.retired == execution.retired
        assert set(again.session.delivery.delivered("q00000")) == set(
            execution.session.delivery.delivered("q00000")
        )
