#!/usr/bin/env python
"""Execute every script under ``examples/`` as a smoke test.

Used by the ``examples-smoke`` CI job: each example runs in-process
(sharing one interpreter keeps the job fast) with repro's own
deprecation warnings escalated to errors — an example regressing onto a
deprecated entry point fails the build, third-party deprecations do
not.  Scripts run in sorted order, each under its own ``__main__``
namespace, with argv reset so argument-reading examples use their
defaults.

Run:  PYTHONPATH=src python tools/run_examples.py [examples_dir]
"""

from __future__ import annotations

import runpy
import sys
import time
import warnings
from pathlib import Path

from repro.deprecation import ReproDeprecationWarning


def main(argv: list[str]) -> int:
    examples = Path(argv[1]) if len(argv) > 1 else Path(__file__).parent.parent / "examples"
    scripts = sorted(p for p in examples.glob("*.py") if not p.name.startswith("_"))
    if not scripts:
        print(f"no example scripts found under {examples}", file=sys.stderr)
        return 2
    failures = []
    for script in scripts:
        print(f"=== {script.name} ===", flush=True)
        started = time.perf_counter()
        saved_argv = sys.argv
        sys.argv = [str(script)]
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", ReproDeprecationWarning)
                runpy.run_path(str(script), run_name="__main__")
        except ReproDeprecationWarning as warning:
            failures.append((script.name, f"deprecated repro API: {warning}"))
            print(f"FAILED {script.name}: deprecated repro API: {warning}", file=sys.stderr)
        except SystemExit as exit_:  # examples may sys.exit(0)
            if exit_.code not in (None, 0):
                failures.append((script.name, f"exit code {exit_.code}"))
                print(f"FAILED {script.name}: exit code {exit_.code}", file=sys.stderr)
        except Exception as error:  # noqa: BLE001 - report and continue
            failures.append((script.name, repr(error)))
            print(f"FAILED {script.name}: {error!r}", file=sys.stderr)
        finally:
            sys.argv = saved_argv
        print(f"--- {script.name}: {time.perf_counter() - started:.1f}s", flush=True)
    if failures:
        print(f"\n{len(failures)} example(s) failed:", file=sys.stderr)
        for name, reason in failures:
            print(f"  {name}: {reason}", file=sys.stderr)
        return 1
    print(f"\nall {len(scripts)} examples passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
